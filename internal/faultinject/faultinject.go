// Package faultinject is a seeded, deterministic fault-injection subsystem
// for the storage stack. A Plan owns one MT19937-64 stream per injection
// site (internal/mt), so the fault sequence is a pure function of the seed
// and the per-site call order — the same seed always produces the same
// faults, which is what makes crash-simulation failures reproducible.
//
// Sites are string constants named after the operation they guard
// (ObjPut, WALAppend, RPCNotify, ...). Code under test calls
// Plan.Check(site, detail) before performing the operation; a nil Plan or a
// site with no rule is free. Rules come in three shapes:
//
//   - Prob(site, p): each call fails independently with probability p.
//   - FailAfter(site, skip, n): let the next skip calls through, then fail
//     the following n calls (n < 0 means fail forever — a "crash").
//   - Always(site) / FailNext(site, n): conveniences over FailAfter.
//
// A rule can be scoped to a detail string via site.With(detail) — e.g.
// WALAppend.With("commit") faults only commit-record appends. Lookup tries
// the scoped rule first, then the bare site.
//
// SetBudget caps the total number of injected faults across all sites;
// once spent, every Check passes. Events() returns the ordered trace of
// injected faults and lag draws for same-seed determinism checks.
package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"cloudiq/internal/mt"
)

// ErrInjected is the sentinel wrapped by every injected fault.
var ErrInjected = errors.New("faultinject: injected fault")

// Site names an injection point. The part before the first ':' selects the
// per-site PRNG stream; the remainder (added by With) scopes rules to a
// single detail value.
type Site string

// Injection sites wired through the storage stack.
const (
	// Object store operations (internal/objstore).
	ObjPut    Site = "obj.put"
	ObjGet    Site = "obj.get"
	ObjDelete Site = "obj.delete"
	ObjList   Site = "obj.list"
	ObjExists Site = "obj.exists"
	// ObjVisibility is a lag site: Lag draws extra not-found reads for a
	// freshly written key (an eventual-consistency visibility spike).
	ObjVisibility Site = "obj.visibility"
	// ObjSelect guards the store-side compute endpoint (S3 Select-style
	// pushdown). A fault here models the store rejecting or aborting a
	// pushed-down plan; readers must fall back to a plain segment read.
	ObjSelect Site = "obj.select"

	// Block device I/O (internal/blockdev).
	DevRead  Site = "dev.read"
	DevWrite Site = "dev.write"
	// DevTornWrite is a lag site on the write path: a non-zero draw n
	// persists only the first n bytes of the write before failing.
	DevTornWrite Site = "dev.tornwrite"

	// Write-ahead log (internal/wal). Detail is the record-type name
	// ("alloc", "commit", ...), so rules can target one record kind.
	WALAppend Site = "wal.append"
	// WALTornTail persists a prefix of the frame (lag-drawn length) and
	// fails the append — the on-disk image a crash mid-fsync leaves.
	WALTornTail Site = "wal.torntail"

	// Object cache manager (internal/ocm): drop a queued write-back
	// upload as if the process died before it drained.
	OCMUploadDrop Site = "ocm.uploaddrop"

	// Coordinator<->writer RPCs (internal/multiplex and the crashsim
	// closures). A fault on RPCNotify models a lost commit notification.
	// RPCProbe fails a health probe — a partition between the cluster
	// controller and the probed node, which can make a live coordinator
	// look dead and trigger a (fenced, therefore safe) failover.
	RPCAlloc   Site = "rpc.alloc"
	RPCNotify  Site = "rpc.notify"
	RPCRestart Site = "rpc.restart"
	RPCProbe   Site = "rpc.probe"

	// Cluster controller (internal/cluster). ClusterReconcile fails one
	// reconcile action before it executes (a controller-side transient:
	// the action is retried on a later round). ClusterPromote fails the
	// coordinator takeover between its phases — the new coordinator is
	// killed mid-promotion and a later round must finish the job.
	ClusterReconcile Site = "cluster.reconcile"
	ClusterPromote   Site = "cluster.promote"

	// Query scheduler (internal/sched). SchedAdmit drops an admission —
	// the query is rejected as if the admission queue overflowed (clients
	// must treat it like backpressure and retry). SchedStall is a lag site
	// drawn at dispatch: a non-zero draw stalls the assigned reader for
	// that many simulated milliseconds before the query runs. Detail is
	// the tenant name (admit) or the reader name (stall).
	SchedAdmit Site = "sched.admit"
	SchedStall Site = "sched.stall"

	// Unified page-I/O pipeline (internal/pageio): the Faults middleware
	// checks these once per request, above whatever terminal serves it.
	// Detail is the object key or the decimal device offset.
	PipeRead   Site = "pipe.read"
	PipeWrite  Site = "pipe.write"
	PipeDelete Site = "pipe.delete"

	// Delta-store compaction (internal/delta): checked once when a
	// compaction cycle picks up a table (detail is the table name) and
	// again immediately before the drained rows are swapped into the
	// columnar main (detail "swap:<table>"). A fault at either point
	// abandons the cycle with the delta rows still live — the crash-mid-
	// compact case the ingest lane must survive without losing or
	// duplicating rows.
	DeltaCompact Site = "delta.compact"
)

// With returns the site scoped to one detail value. Rules installed on the
// scoped site take precedence over rules on the bare site.
func (s Site) With(detail string) Site {
	return Site(string(s) + ":" + detail)
}

// base returns the PRNG-stream key: the site name without any detail scope.
func (s Site) base() Site {
	if i := strings.IndexByte(string(s), ':'); i >= 0 {
		return s[:i]
	}
	return s
}

// Event records one PRNG-visible decision: an injected fault or a lag draw.
type Event struct {
	Site   Site   // bare site
	Call   int    // 1-based call number at that site
	Detail string // detail passed to Check/Lag
	Kind   string // "fault" or "lag"
	Value  int    // lag value (0 for faults)
}

func (e Event) String() string {
	return fmt.Sprintf("%s#%d(%s)=%s:%d", e.Site, e.Call, e.Detail, e.Kind, e.Value)
}

type rule struct {
	prob    float64 // fail with this probability (0 = schedule-only)
	skip    int     // let this many more matching calls through first
	failN   int     // then fail this many (-1 = forever); 0 = no schedule
	lagLo   int     // Lag draws uniformly in [lagLo, lagHi]; both 0 = none
	lagHi   int
	hasLag  bool
	hasProb bool
}

// Plan is a deterministic fault schedule. The zero value and a nil *Plan
// are inert: every Check passes and every Lag is zero.
type Plan struct {
	mu      sync.Mutex
	seed    uint64
	rules   map[Site]*rule
	streams map[Site]*mt.Source // keyed by bare site
	calls   map[Site]int        // per bare site call counter
	events  []Event
	budget  int  // remaining injectable faults
	capped  bool // budget set at all
	faults  int  // total injected
}

// New returns a Plan whose entire fault sequence is determined by seed.
func New(seed uint64) *Plan {
	return &Plan{
		seed:    seed,
		rules:   make(map[Site]*rule),
		streams: make(map[Site]*mt.Source),
		calls:   make(map[Site]int),
	}
}

// Seed returns the seed the Plan was built with.
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

func (p *Plan) stream(s Site) *mt.Source {
	b := s.base()
	src, ok := p.streams[b]
	if !ok {
		// Independent stream per site: offset the seed by a hash of the
		// site name so adding a rule at one site never shifts another
		// site's sequence.
		h := uint64(14695981039346656037) // FNV-1a over the site name
		for i := 0; i < len(b); i++ {
			h ^= uint64(b[i])
			h *= 1099511628211
		}
		src = mt.New(p.seed ^ mt.Hash64(h))
		p.streams[b] = src
	}
	return src
}

func (p *Plan) ensureRule(s Site) *rule {
	r, ok := p.rules[s]
	if !ok {
		r = &rule{}
		p.rules[s] = r
	}
	return r
}

// Always makes every matching call fail until Clear.
func (p *Plan) Always(s Site) *Plan { return p.FailAfter(s, 0, -1) }

// FailNext fails the next n matching calls, then lets calls through again.
func (p *Plan) FailNext(s Site, n int) *Plan { return p.FailAfter(s, 0, n) }

// FailAfter lets the next skip matching calls through, then fails the
// following n calls. n < 0 fails forever (a crash that never heals).
func (p *Plan) FailAfter(s Site, skip, n int) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.ensureRule(s)
	r.skip, r.failN = skip, n
	return p
}

// Prob makes each matching call fail independently with probability prob,
// drawn from the site's deterministic stream.
func (p *Plan) Prob(s Site, prob float64) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.ensureRule(s)
	r.prob, r.hasProb = prob, true
	return p
}

// Lag configures the site's lag draw: Lag(site, detail) returns a uniform
// value in [lo, hi]. Used for visibility spikes and torn-write lengths.
func (p *Plan) Lag(s Site, lo, hi int) *Plan {
	if p == nil {
		return nil
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.ensureRule(s)
	r.lagLo, r.lagHi, r.hasLag = lo, hi, true
	return p
}

// Clear removes any rule installed at exactly s (scoped rules are distinct
// from bare-site rules). Call counters and streams are preserved so the
// trace stays monotonic.
func (p *Plan) Clear(s Site) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.rules, s)
	return p
}

// SetBudget caps the total number of faults the Plan may inject across all
// sites. n < 0 removes the cap.
func (p *Plan) SetBudget(n int) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.capped = n >= 0
	p.budget = n
	return p
}

// lookup finds the governing rule: detail-scoped first, then bare.
func (p *Plan) lookup(s Site, detail string) *rule {
	if detail != "" {
		if r, ok := p.rules[s.With(detail)]; ok {
			return r
		}
	}
	return p.rules[s]
}

// Check records a call at site s and returns ErrInjected (wrapped with the
// site and call number) if the Plan decides this call fails. Nil receiver,
// no rule, or exhausted budget all pass. detail scopes rule lookup and is
// recorded in the trace (an object key, a WAL record type, a node name).
func (p *Plan) Check(s Site, detail string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := s.base()
	p.calls[b]++
	call := p.calls[b]
	r := p.lookup(s, detail)
	if r == nil {
		return nil
	}
	inject := false
	switch {
	case r.failN != 0 && r.skip > 0:
		r.skip--
	case r.failN < 0:
		inject = true
	case r.failN > 0:
		inject = true
		r.failN--
	case r.hasProb && r.prob > 0:
		// One draw per governed call keeps the stream aligned with the
		// call sequence regardless of the probability value.
		u := float64(p.stream(s).Uint64()>>11) / (1 << 53)
		inject = u < r.prob
	}
	if !inject {
		return nil
	}
	if p.capped && p.budget <= 0 {
		return nil
	}
	if p.capped {
		p.budget--
	}
	p.faults++
	p.events = append(p.events, Event{Site: b, Call: call, Detail: detail, Kind: "fault"})
	return fmt.Errorf("%w at %s call %d (%s)", ErrInjected, b, call, detail)
}

// LagAt draws the site's configured lag for this call: 0 when no lag rule
// matches, otherwise uniform in [lo, hi]. Draws are recorded in the trace.
func (p *Plan) LagAt(s Site, detail string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := s.base()
	p.calls[b]++
	call := p.calls[b]
	r := p.lookup(s, detail)
	if r == nil || !r.hasLag {
		return 0
	}
	span := r.lagHi - r.lagLo + 1
	v := r.lagLo + int(p.stream(s).Uint64()%uint64(span))
	p.events = append(p.events, Event{Site: b, Call: call, Detail: detail, Kind: "lag", Value: v})
	return v
}

// Int draws a uniform value in [lo, hi] from the site's stream without
// consulting any rule — harness-side decisions (crash points) use it so
// they share the Plan's determinism.
func (p *Plan) Int(s Site, lo, hi int) int {
	if p == nil || hi < lo {
		return lo
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return lo + int(p.stream(s).Uint64()%uint64(hi-lo+1))
}

// Calls returns how many times site s (bare) has been checked.
func (p *Plan) Calls(s Site) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[s.base()]
}

// Injected returns the total number of faults injected so far.
func (p *Plan) Injected() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Events returns a copy of the ordered fault/lag trace.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// TraceString renders the event trace one event per line — convenient for
// same-seed determinism comparisons and failure reports.
func (p *Plan) TraceString() string {
	var sb strings.Builder
	for _, e := range p.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
