package objstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cloudiq/internal/faultinject"
	"cloudiq/internal/iomodel"
)

func ctxb() context.Context { return context.Background() }

func TestPutGetRoundTrip(t *testing.T) {
	s := NewMem(Config{})
	want := []byte("hello pages")
	if err := s.Put(ctxb(), "a/1", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctxb(), "a/1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
}

func TestGetMissingKey(t *testing.T) {
	s := NewMem(Config{})
	if _, err := s.Get(ctxb(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if got := s.Metrics().GetMisses(); got != 1 {
		t.Fatalf("GetMisses = %d, want 1", got)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewMem(Config{})
	if err := s.Put(ctxb(), "k", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Get(ctxb(), "k")
	a[0] = 99
	b, _ := s.Get(ctxb(), "k")
	if b[0] != 1 {
		t.Fatal("mutating a returned buffer leaked into the store")
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := NewMem(Config{})
	data := []byte{1, 2, 3}
	if err := s.Put(ctxb(), "k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	got, _ := s.Get(ctxb(), "k")
	if got[0] != 1 {
		t.Fatal("mutating the input buffer after Put leaked into the store")
	}
}

func TestNewKeyMissReads(t *testing.T) {
	// Scenario 3 of §3: a freshly written object is reported missing until
	// eventual consistency catches up.
	s := NewMem(Config{Consistency: Consistency{NewKeyMissReads: 2}})
	if err := s.Put(ctxb(), "fresh", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Get(ctxb(), "fresh"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("read %d: err = %v, want ErrNotFound", i, err)
		}
	}
	got, err := s.Get(ctxb(), "fresh")
	if err != nil || string(got) != "x" {
		t.Fatalf("read 3 = %q, %v; want \"x\", nil", got, err)
	}
}

func TestExistsHonorsVisibility(t *testing.T) {
	s := NewMem(Config{Consistency: Consistency{NewKeyMissReads: 1}})
	if err := s.Put(ctxb(), "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Exists(ctxb(), "k")
	if err != nil || ok {
		t.Fatalf("first Exists = %v, %v; want false", ok, err)
	}
	ok, err = s.Exists(ctxb(), "k")
	if err != nil || !ok {
		t.Fatalf("second Exists = %v, %v; want true", ok, err)
	}
	ok, err = s.Exists(ctxb(), "missing")
	if err != nil || ok {
		t.Fatalf("Exists(missing) = %v, %v; want false", ok, err)
	}
}

func TestStaleReadsAfterOverwrite(t *testing.T) {
	// Scenario 2 of §3: an overwritten object serves the previous version
	// for a while. This is the anomaly the never-write-twice policy dodges.
	s := NewMem(Config{Consistency: Consistency{StaleReads: 2}})
	if err := s.Put(ctxb(), "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctxb(), "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := s.Get(ctxb(), "k")
		if err != nil || string(got) != "v1" {
			t.Fatalf("stale read %d = %q, %v; want v1", i, got, err)
		}
	}
	got, err := s.Get(ctxb(), "k")
	if err != nil || string(got) != "v2" {
		t.Fatalf("post-window read = %q, %v; want v2", got, err)
	}
}

func TestNeverWrittenTwiceKeysAreImmune(t *testing.T) {
	// Writing each key exactly once yields read-after-write behaviour even
	// with a harsh stale-read window configured.
	s := NewMem(Config{Consistency: Consistency{StaleReads: 10}})
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("page/%d", i)
		if err := s.Put(ctxb(), key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(ctxb(), key)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("key %s: got %v, %v", key, got, err)
		}
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := NewMem(Config{})
	if err := s.Delete(ctxb(), "ghost"); err != nil {
		t.Fatalf("deleting a missing key: %v", err)
	}
	if err := s.Put(ctxb(), "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctxb(), "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctxb(), "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete, err = %v, want ErrNotFound", err)
	}
	if err := s.Delete(ctxb(), "k"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestList(t *testing.T) {
	s := NewMem(Config{})
	for _, k := range []string{"b/2", "a/1", "a/3", "c"} {
		if err := s.Put(ctxb(), k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List(ctxb(), "a/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a/1" || keys[1] != "a/3" {
		t.Fatalf("List(a/) = %v", keys)
	}
	all, err := s.List(ctxb(), "")
	if err != nil || len(all) != 4 {
		t.Fatalf("List(\"\") = %v, %v", all, err)
	}
}

func TestListHidesInvisibleKeys(t *testing.T) {
	s := NewMem(Config{Consistency: Consistency{NewKeyMissReads: 1}})
	if err := s.Put(ctxb(), "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List(ctxb(), "")
	if err != nil || len(keys) != 0 {
		t.Fatalf("List before visibility = %v, %v; want empty", keys, err)
	}
}

func TestMetricsCounts(t *testing.T) {
	s := NewMem(Config{})
	data := make([]byte, 100)
	_ = s.Put(ctxb(), "k", data)
	_, _ = s.Get(ctxb(), "k")
	_, _ = s.Get(ctxb(), "missing")
	_ = s.Delete(ctxb(), "k")
	_, _ = s.List(ctxb(), "")
	m := s.Metrics()
	if m.Puts() != 1 || m.Gets() != 2 || m.GetMisses() != 1 || m.Deletes() != 1 || m.Lists() != 1 {
		t.Fatalf("metrics: %s", m)
	}
	if m.BytesIn() != 100 || m.BytesOut() != 100 {
		t.Fatalf("bytes: %s", m)
	}
	m.Reset()
	if m.Puts() != 0 || m.BytesIn() != 0 {
		t.Fatalf("after reset: %s", m)
	}
}

func TestStoredBytesAndLen(t *testing.T) {
	s := NewMem(Config{})
	_ = s.Put(ctxb(), "a", make([]byte, 10))
	_ = s.Put(ctxb(), "b", make([]byte, 20))
	_ = s.Put(ctxb(), "b", make([]byte, 5)) // overwrite: latest counts
	if got := s.StoredBytes(); got != 15 {
		t.Fatalf("StoredBytes = %d, want 15", got)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

func TestInjectedFailures(t *testing.T) {
	plan := faultinject.New(1)
	plan.FailNext(faultinject.ObjPut, 1)
	plan.Always(faultinject.ObjGet.With("bad"))
	s := NewMem(Config{Faults: plan})
	if err := s.Put(ctxb(), "k", []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put err = %v, want ErrInjected", err)
	}
	if err := s.Put(ctxb(), "k", []byte("x")); err != nil {
		t.Fatalf("Put after one-shot fault: %v", err)
	}
	if err := s.Put(ctxb(), "bad", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Get faults are scoped to one key; both sentinels are visible.
	if _, err := s.Get(ctxb(), "bad"); !errors.Is(err, ErrInjected) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Get err = %v, want ErrInjected", err)
	}
	if _, err := s.Get(ctxb(), "k"); err != nil {
		t.Fatalf("unscoped Get failed: %v", err)
	}
}

// Delete, Exists and List historically had no failure path at all; real
// object stores throttle those too.
func TestInjectedFailuresCoverEveryOperation(t *testing.T) {
	plan := faultinject.New(2)
	s := NewMem(Config{Faults: plan})
	if err := s.Put(ctxb(), "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	plan.FailNext(faultinject.ObjDelete, 1)
	if err := s.Delete(ctxb(), "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Delete err = %v, want ErrInjected", err)
	}
	if s.Len() != 1 {
		t.Fatal("failed delete removed the object")
	}
	plan.FailNext(faultinject.ObjExists, 1)
	if _, err := s.Exists(ctxb(), "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Exists err = %v, want ErrInjected", err)
	}
	plan.FailNext(faultinject.ObjList, 1)
	if _, err := s.List(ctxb(), ""); !errors.Is(err, ErrInjected) {
		t.Fatalf("List err = %v, want ErrInjected", err)
	}
	// All sites healed: operations succeed again.
	if err := s.Delete(ctxb(), "k"); err != nil {
		t.Fatal(err)
	}
	if keys, err := s.List(ctxb(), ""); err != nil || len(keys) != 0 {
		t.Fatalf("List after delete = %v, %v", keys, err)
	}
}

// A visibility-lag spike extends a fresh key's not-found window beyond the
// baseline consistency model; the window still converges.
func TestVisibilityLagSpikes(t *testing.T) {
	plan := faultinject.New(3)
	plan.Lag(faultinject.ObjVisibility, 2, 2)
	s := NewMem(Config{
		Consistency: Consistency{NewKeyMissReads: 1},
		Faults:      plan,
	})
	if err := s.Put(ctxb(), "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	misses := 0
	for {
		_, err := s.Get(ctxb(), "k")
		if err == nil {
			break
		}
		if !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
		misses++
		if misses > 10 {
			t.Fatal("fresh key never became visible")
		}
	}
	if misses != 3 { // 1 baseline + 2 spike
		t.Fatalf("misses = %d, want 3", misses)
	}
}

func TestContextCancellation(t *testing.T) {
	s := NewMem(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Put(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Put err = %v, want context.Canceled", err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get err = %v, want context.Canceled", err)
	}
	if _, err := s.List(ctx, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("List err = %v, want context.Canceled", err)
	}
}

func TestPrefixThrottlingQueuesSamePrefix(t *testing.T) {
	// Two requests to the same prefix serialize; requests to distinct
	// prefixes do not. 100 req/s => 10ms of simulated time per request.
	scale := iomodel.NewScale(0)
	s := NewMem(Config{PrefixRate: 100, Scale: scale})
	_ = s.Put(ctxb(), "p/1", []byte("x"))
	_ = s.Put(ctxb(), "p/2", []byte("x"))
	if got, want := scale.Charged(), 20*time.Millisecond; got != want {
		t.Fatalf("same-prefix charged = %v, want %v", got, want)
	}
	scale.ResetCharged()
	_ = s.Put(ctxb(), "q/1", []byte("x"))
	if got, want := scale.Charged(), 10*time.Millisecond; got != want {
		t.Fatalf("new-prefix charged = %v, want %v", got, want)
	}
}

func TestLatencyCharged(t *testing.T) {
	scale := iomodel.NewScale(0)
	s := NewMem(Config{
		ReadLatency:  iomodel.Latency{Base: 5 * time.Millisecond},
		WriteLatency: iomodel.Latency{Base: 7 * time.Millisecond},
		Scale:        scale,
	})
	_ = s.Put(ctxb(), "k", []byte("x"))
	if got := scale.Charged(); got != 7*time.Millisecond {
		t.Fatalf("after Put charged = %v, want 7ms", got)
	}
	_, _ = s.Get(ctxb(), "k")
	if got := scale.Charged(); got != 12*time.Millisecond {
		t.Fatalf("after Get charged = %v, want 12ms", got)
	}
}

func TestConcurrentAccessRace(t *testing.T) {
	s := NewMem(Config{Consistency: Consistency{NewKeyMissReads: 1}})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("w%d/%d", i, j)
				if err := s.Put(ctxb(), key, []byte{byte(j)}); err != nil {
					t.Error(err)
					return
				}
				// Retry-until-found, as the storage subsystem does.
				for {
					if _, err := s.Get(ctxb(), key); err == nil {
						break
					} else if !errors.Is(err, ErrNotFound) {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if got := s.Len(); got != 8*200 {
		t.Fatalf("Len = %d, want %d", got, 8*200)
	}
}

func TestPropertyPutThenEventuallyGet(t *testing.T) {
	// For any payload and any miss window, a bounded number of retries
	// always recovers the exact bytes written.
	f := func(payload []byte, miss uint8) bool {
		window := int(miss % 5)
		s := NewMem(Config{Consistency: Consistency{NewKeyMissReads: window}})
		if err := s.Put(ctxb(), "k", payload); err != nil {
			return false
		}
		for i := 0; i <= window; i++ {
			got, err := s.Get(ctxb(), "k")
			if err == nil {
				return string(got) == string(payload)
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestECGetAfter404Converges is the regression test for the paper's
// retry-until-found read policy (§3 scenario 3): a Get racing a fresh PUT
// may see 404, but repeated Gets must succeed within the visibility window
// — NewKeyMissReads baseline plus any injected visibility spike — and never
// regress to 404 afterward.
func TestECGetAfter404Converges(t *testing.T) {
	const baseline, spike = 3, 2
	plan := faultinject.New(11).Lag(faultinject.ObjVisibility.With("w"), spike, spike)
	s := NewMem(Config{
		Consistency: Consistency{NewKeyMissReads: baseline},
		Faults:      plan,
	})
	for _, tc := range []struct {
		key    string
		window int
	}{
		{"plain", baseline},
		{"w", baseline + spike}, // spiked key: longer, still bounded
	} {
		if err := s.Put(ctxb(), tc.key, []byte("v")); err != nil {
			t.Fatalf("put %s: %v", tc.key, err)
		}
		misses := 0
		for {
			if _, err := s.Get(ctxb(), tc.key); err == nil {
				break
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("get %s: %v", tc.key, err)
			}
			if misses++; misses > tc.window {
				t.Fatalf("key %s still 404 after %d reads; window is %d", tc.key, misses, tc.window)
			}
		}
		if misses != tc.window {
			t.Errorf("key %s converged after %d misses, want exactly %d", tc.key, misses, tc.window)
		}
		// Convergence is permanent: no 404 ever again.
		for i := 0; i < 5; i++ {
			if _, err := s.Get(ctxb(), tc.key); err != nil {
				t.Fatalf("key %s regressed to %v after converging", tc.key, err)
			}
		}
	}
}

// TestECListNeverShowsPermanently404Key guards the List/Get consistency
// contract the WriterRestartGC poll depends on: a key surfaced by List must
// be Get-able with at most the remaining visibility window of retries —
// List must never advertise a key whose Get then 404s forever.
func TestECListNeverShowsPermanently404Key(t *testing.T) {
	const baseline = 4
	s := NewMem(Config{Consistency: Consistency{NewKeyMissReads: baseline}})
	if err := s.Put(ctxb(), "gc/0001", []byte("page")); err != nil {
		t.Fatal(err)
	}
	listCalls := 0
	for {
		keys, err := s.List(ctxb(), "gc/")
		if err != nil {
			t.Fatal(err)
		}
		if listCalls++; listCalls > baseline+1 {
			t.Fatalf("key invisible to List after %d calls; window is %d", listCalls, baseline)
		}
		if len(keys) == 0 {
			continue
		}
		if keys[0] != "gc/0001" {
			t.Fatalf("List returned %q, want gc/0001", keys[0])
		}
		// The key is listed, so within the remaining window a retrying
		// reader must find it. Budget: the full baseline, defensively.
		for attempt := 0; ; attempt++ {
			if _, err := s.Get(ctxb(), "gc/0001"); err == nil {
				break
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatal(err)
			}
			if attempt >= baseline {
				t.Fatalf("List showed gc/0001 but Get still 404s after %d retries", attempt+1)
			}
		}
		return
	}
}

// TestECListNeverInventsKeys is the dual guard: List output is always a
// subset of truly stored keys — deleted or never-written keys cannot
// appear, so restart GC never deletes an object it didn't observe.
func TestECListNeverInventsKeys(t *testing.T) {
	s := NewMem(Config{Consistency: Consistency{NewKeyMissReads: 2}})
	for _, k := range []string{"p/a", "p/b", "p/c"} {
		if err := s.Put(ctxb(), k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(ctxb(), "p/b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		keys, err := s.List(ctxb(), "p/")
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if k == "p/b" {
				t.Fatalf("List call %d resurrected deleted key p/b", i)
			}
			if k != "p/a" && k != "p/c" {
				t.Fatalf("List call %d invented key %q", i, k)
			}
		}
	}
}
