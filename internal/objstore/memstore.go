package objstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cloudiq/internal/faultinject"
	"cloudiq/internal/iomodel"
)

// Consistency configures the eventual-consistency anomalies the simulated
// store exhibits. The model is read-count based rather than clock based so
// tests are deterministic and independent of the time scale:
//
//   - A freshly created object answers ErrNotFound to its first
//     NewKeyMissReads Get/Exists probes (scenario 3 of §3 in the paper).
//   - An overwritten object serves the previous version to its first
//     StaleReads Gets after the overwrite (scenario 2). The engine never
//     overwrites, which is exactly why it is immune to this anomaly; the
//     store still models it so tests can demonstrate the hazard.
type Consistency struct {
	NewKeyMissReads int
	StaleReads      int
}

// Config parameterizes a MemStore.
type Config struct {
	// Consistency selects the anomaly model. The zero value is a strongly
	// consistent store.
	Consistency Consistency

	// ReadLatency / WriteLatency are the per-request service times. They are
	// slept outside any shared resource, so parallel requests overlap them —
	// the property that lets aggressive prefetching mask S3 latency.
	ReadLatency  iomodel.Latency
	WriteLatency iomodel.Latency

	// Bandwidth, if non-nil, is the store's aggregate transfer capacity.
	Bandwidth *iomodel.Resource

	// Network, if non-nil, models the compute instance's NIC; it is shared
	// with whatever else the experiment attaches to it (e.g. load input
	// files) and is consumed on both uploads and downloads.
	Network *iomodel.Resource

	// PrefixRate, if positive, is the maximum sustained requests per second
	// a single key prefix can absorb before requests queue (S3 throttles per
	// prefix). The prefix is the part of the key before the first '/'.
	PrefixRate float64

	// Scale is the time scale for latency sleeps. Nil means no sleeping.
	Scale *iomodel.Scale

	// Seed seeds the jitter source.
	Seed int64

	// Faults, when non-nil, is consulted before every request: the Plan's
	// ObjPut/ObjGet/ObjDelete/ObjExists/ObjList sites can fail any
	// operation (real S3 throttles deletes and lists too), and its
	// ObjVisibility lag site adds per-key visibility spikes on top of
	// Consistency.NewKeyMissReads. Failures are reported as ErrInjected
	// joined with faultinject.ErrInjected.
	Faults *faultinject.Plan
}

type object struct {
	versions  [][]byte // versions[len-1] is the latest
	missLeft  int      // remaining Gets that must report not-found
	staleLeft int      // remaining Gets served from the previous version
}

// MemStore is an in-memory Store implementing the simulation in Config.
type MemStore struct {
	cfg     Config
	scale   *iomodel.Scale
	rnd     *iomodel.Rand
	metrics Metrics

	mu       sync.Mutex
	objects  map[string]*object
	prefixes map[string]*iomodel.Resource
}

var _ Store = (*MemStore)(nil)

// NewMem returns a MemStore with the given configuration.
func NewMem(cfg Config) *MemStore {
	scale := cfg.Scale
	if scale == nil {
		scale = iomodel.NewScale(0)
	}
	return &MemStore{
		cfg:      cfg,
		scale:    scale,
		rnd:      iomodel.NewRand(cfg.Seed),
		objects:  make(map[string]*object),
		prefixes: make(map[string]*iomodel.Resource),
	}
}

// Metrics exposes the request counters.
func (s *MemStore) Metrics() *Metrics { return &s.metrics }

// inject consults the fault plan; a non-nil return is the error the caller
// surfaces. It satisfies errors.Is for both objstore.ErrInjected and
// faultinject.ErrInjected.
func (s *MemStore) inject(op string, site faultinject.Site, key string) error {
	if err := s.cfg.Faults.Check(site, key); err != nil {
		return fmt.Errorf("%s %q: %w", op, key, errors.Join(ErrInjected, err))
	}
	return nil
}

// StoredBytes reports the total size of all latest object versions. It feeds
// the data-at-rest cost model.
func (s *MemStore) StoredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, o := range s.objects {
		if len(o.versions) > 0 {
			n += int64(len(o.versions[len(o.versions)-1]))
		}
	}
	return n
}

// Len reports the number of objects currently stored.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

func (s *MemStore) throttlePrefix(key string) {
	if s.cfg.PrefixRate <= 0 {
		return
	}
	prefix := key
	if i := strings.IndexByte(key, '/'); i >= 0 {
		prefix = key[:i]
	}
	s.mu.Lock()
	r, ok := s.prefixes[prefix]
	if !ok {
		perOp := time.Duration(float64(time.Second) / s.cfg.PrefixRate)
		r = iomodel.NewResource(s.scale, perOp, 0)
		s.prefixes[prefix] = r
	}
	s.mu.Unlock()
	r.Acquire(0)
}

// Put implements Store.
func (s *MemStore) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.metrics.puts.Add(1)
	if err := s.inject("put", faultinject.ObjPut, key); err != nil {
		return err
	}
	s.throttlePrefix(key)
	s.scale.Sleep(s.cfg.WriteLatency.Duration(len(data), s.rnd))
	s.cfg.Network.Acquire(len(data))
	s.cfg.Bandwidth.Acquire(len(data))
	s.metrics.bytesIn.Add(int64(len(data)))

	cp := make([]byte, len(data))
	copy(cp, data)

	s.mu.Lock()
	defer s.mu.Unlock()
	o, exists := s.objects[key]
	if !exists {
		// A visibility-lag spike extends the not-found window for this
		// particular fresh key beyond the baseline anomaly model.
		s.objects[key] = &object{
			versions: [][]byte{cp},
			missLeft: s.cfg.Consistency.NewKeyMissReads + s.cfg.Faults.LagAt(faultinject.ObjVisibility, key),
		}
		return nil
	}
	o.versions = append(o.versions, cp)
	o.staleLeft = s.cfg.Consistency.StaleReads
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.metrics.gets.Add(1)
	if err := s.inject("get", faultinject.ObjGet, key); err != nil {
		return nil, err
	}
	s.throttlePrefix(key)

	s.mu.Lock()
	o, ok := s.objects[key]
	if !ok {
		s.mu.Unlock()
		s.metrics.getMisses.Add(1)
		s.scale.Sleep(s.cfg.ReadLatency.Duration(0, s.rnd))
		return nil, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	if o.missLeft > 0 {
		o.missLeft--
		s.mu.Unlock()
		s.metrics.getMisses.Add(1)
		s.scale.Sleep(s.cfg.ReadLatency.Duration(0, s.rnd))
		return nil, fmt.Errorf("get %q: %w", key, ErrNotFound)
	}
	version := o.versions[len(o.versions)-1]
	if o.staleLeft > 0 && len(o.versions) > 1 {
		o.staleLeft--
		version = o.versions[len(o.versions)-2]
	}
	s.mu.Unlock()

	s.scale.Sleep(s.cfg.ReadLatency.Duration(len(version), s.rnd))
	s.cfg.Network.Acquire(len(version))
	s.cfg.Bandwidth.Acquire(len(version))
	s.metrics.bytesOut.Add(int64(len(version)))

	cp := make([]byte, len(version))
	copy(cp, version)
	return cp, nil
}

// Delete implements Store. Deleting a missing key succeeds, as on S3.
func (s *MemStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.metrics.deletes.Add(1)
	if err := s.inject("delete", faultinject.ObjDelete, key); err != nil {
		return err
	}
	s.throttlePrefix(key)
	s.scale.Sleep(s.cfg.WriteLatency.Duration(0, s.rnd))

	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
	return nil
}

// Exists implements Store, honoring the same visibility rules as Get.
func (s *MemStore) Exists(ctx context.Context, key string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	s.metrics.gets.Add(1)
	if err := s.inject("exists", faultinject.ObjExists, key); err != nil {
		return false, err
	}
	s.throttlePrefix(key)
	s.scale.Sleep(s.cfg.ReadLatency.Duration(0, s.rnd))

	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[key]
	if !ok {
		return false, nil
	}
	if o.missLeft > 0 {
		o.missLeft--
		return false, nil
	}
	return true, nil
}

// List implements Store.
func (s *MemStore) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.metrics.lists.Add(1)
	if err := s.inject("list", faultinject.ObjList, prefix); err != nil {
		return nil, err
	}
	s.scale.Sleep(s.cfg.ReadLatency.Duration(0, s.rnd))

	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k, o := range s.objects {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if o.missLeft > 0 {
			// Listing is an observation too: eventual consistency
			// converges as clients keep looking.
			o.missLeft--
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// AllKeys returns every stored key, sorted, ignoring visibility windows and
// fault rules — the omniscient oracle crash-simulation audits compare the
// engine's reachable set against.
func (s *MemStore) AllKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.objects))
	for k := range s.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OverwrittenKeys returns, sorted, every key that has been Put more than
// once over its lifetime. The engine's never-write-twice discipline means
// any entry here is a protocol violation.
func (s *MemStore) OverwrittenKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k, o := range s.objects {
		if len(o.versions) > 1 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
