package objstore

// The store-side compute endpoint: an S3 Select-style operation that
// evaluates filter + projection + partial aggregation against stored encoded
// column segments and returns only the qualifying bytes. The plan is a small
// self-contained expression tree (no dependency on the exec package) whose
// semantics mirror exec's expression evaluator exactly — readers rely on the
// pushdown result being byte-identical to a plain scan-then-filter.

import (
	"bytes"
	"compress/flate"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"cloudiq/internal/column"
	"cloudiq/internal/faultinject"
)

// ErrUnsupportedPlan reports that the store rejected a pushed-down plan:
// unknown operator, type mismatch, missing column, or an encoding it cannot
// evaluate. Callers must fall back to plain segment reads.
var ErrUnsupportedPlan = errors.New("objstore: unsupported select plan")

// Selector is the optional compute capability of a store. MemStore
// implements it; stores without it force readers onto the plain read path.
type Selector interface {
	// Select evaluates req's plan against the named stored objects and
	// returns qualifying rows (or partial aggregate states). Visibility
	// follows Get: a not-yet-visible object answers ErrNotFound.
	Select(ctx context.Context, req SelectRequest) (*SelectResult, error)
}

// SelectCol names one stored column segment the plan reads: the column name
// the plan refers to it by, and the object key it is stored under.
type SelectCol struct {
	Name string
	Key  string
}

// SelectRequest is one pushdown call: the column objects of a single table
// segment plus the plan to evaluate over them.
type SelectRequest struct {
	// Cols are the column objects forming the segment. All must decode to
	// the same row count.
	Cols []SelectCol
	// Flate indicates the stored objects are DEFLATE-compressed page images
	// (buffer.FlateCodec); the store inflates before decoding.
	Flate bool
	// Plan is the computation to evaluate.
	Plan SelectPlan
}

// SelectPlan is filter + projection + optional partial aggregation.
// With Aggs empty the result is row-mode: the filtered rows of the Project
// columns, re-encoded. With Aggs set the result is one partial aggregate
// state per aggregate and Project is ignored.
type SelectPlan struct {
	// Filter, if non-nil, keeps rows where it evaluates non-zero (Int64).
	Filter *PlanExpr
	// Project lists the column names to return in row mode.
	Project []string
	// Aggs, if non-empty, requests partial aggregation instead of rows.
	Aggs []PlanAgg
}

// PlanExpr is one node of the pushdown expression mini-language. Op selects
// the operator; the operand fields used depend on Op:
//
//	"col"                     Col (column reference)
//	"int" / "float" / "str"   I / F / S (literals)
//	"add" "sub" "mul" "div"   Args[0], Args[1]
//	"eq" "ne" "lt" "le"
//	"gt" "ge"                 Args[0], Args[1]
//	"and" "or"                Args[0], Args[1]
//	"not"                     Args[0]
//	"like"                    Args[0], Pattern, Neg
//	"in"                      Args[0], Set (string membership)
//
// Booleans are Int64 0/1 vectors, matching exec.
type PlanExpr struct {
	Op      string
	Col     string
	I       int64
	F       float64
	S       string
	Pattern string
	Neg     bool
	Set     []string
	Args    []*PlanExpr
}

// PlanAgg is one partial aggregate: Func over Expr (nil for count(*)).
type PlanAgg struct {
	// Func is "count", "sum", "min" or "max".
	Func string
	// Expr is the aggregate input; nil means count(*).
	Expr *PlanExpr
}

// AggState is a mergeable partial aggregate computed store-side. Its fields
// mirror the reader's accumulator so merging partial states row-order-
// sequentially reproduces the reader's own arithmetic for integer sums,
// counts, and min/max exactly.
type AggState struct {
	Count int64
	SumI  int64
	SumF  float64
	MinI  int64
	MaxI  int64
	MinF  float64
	MaxF  float64
	MinS  string
	MaxS  string
	// Seen reports whether any row reached a min/max accumulator.
	Seen bool
	// Typ is the column type of the aggregate input (meaningful only when
	// Count > 0 or Seen).
	Typ column.Type
}

// SelectResult is the store's answer to one SelectRequest.
type SelectResult struct {
	// Rows is the number of qualifying rows (row mode).
	Rows int
	// Cols holds the re-encoded qualifying rows, parallel to Plan.Project
	// (row mode).
	Cols [][]byte
	// Aggs holds one partial state per Plan.Aggs entry (aggregate mode).
	Aggs []AggState
	// ScannedBytes is the stored bytes the select read to answer — what the
	// compute charge is billed on.
	ScannedBytes int64
	// ReturnedBytes is the bytes that crossed the network back to the
	// caller — what the transfer charge and NIC usage are billed on.
	ReturnedBytes int64
}

// unsupported wraps a reason into an ErrUnsupportedPlan error.
func unsupported(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnsupportedPlan, fmt.Sprintf(format, args...))
}

// evalPlanExpr evaluates e over the named vectors (all of length n). The
// semantics replicate exec's expression evaluator: integer arithmetic stays
// Int64 except division, any float operand promotes to Float64, booleans are
// Int64 0/1, mixed numeric comparisons promote, LIKE/IN are string-only.
func evalPlanExpr(e *PlanExpr, env map[string]*column.Vector, n int) (*column.Vector, error) {
	if e == nil {
		return nil, unsupported("nil expression")
	}
	switch e.Op {
	case "col":
		v, ok := env[e.Col]
		if !ok {
			return nil, unsupported("no column %q in request", e.Col)
		}
		return v, nil
	case "int":
		v := make([]int64, n)
		for i := range v {
			v[i] = e.I
		}
		return &column.Vector{Typ: column.Int64, I64: v}, nil
	case "float":
		v := make([]float64, n)
		for i := range v {
			v[i] = e.F
		}
		return &column.Vector{Typ: column.Float64, F64: v}, nil
	case "str":
		v := make([]string, n)
		for i := range v {
			v[i] = e.S
		}
		return &column.Vector{Typ: column.String, Str: v}, nil
	case "add", "sub", "mul", "div":
		return evalArith(e, env, n)
	case "eq", "ne", "lt", "le", "gt", "ge":
		return evalCmp(e, env, n)
	case "and", "or":
		av, bv, err := evalBinary(e, env, n)
		if err != nil {
			return nil, err
		}
		if av.Typ != column.Int64 || bv.Typ != column.Int64 {
			return nil, unsupported("boolean on non-boolean operands")
		}
		out := make([]int64, av.Len())
		and := e.Op == "and"
		for i := range out {
			x, y := av.I64[i] != 0, bv.I64[i] != 0
			if (and && x && y) || (!and && (x || y)) {
				out[i] = 1
			}
		}
		return &column.Vector{Typ: column.Int64, I64: out}, nil
	case "not":
		av, err := evalArg(e, 0, env, n)
		if err != nil {
			return nil, err
		}
		if av.Typ != column.Int64 {
			return nil, unsupported("NOT on non-boolean operand")
		}
		out := make([]int64, av.Len())
		for i, x := range av.I64 {
			if x == 0 {
				out[i] = 1
			}
		}
		return &column.Vector{Typ: column.Int64, I64: out}, nil
	case "like":
		av, err := evalArg(e, 0, env, n)
		if err != nil {
			return nil, err
		}
		if av.Typ != column.String {
			return nil, unsupported("LIKE on %v", av.Typ)
		}
		out := make([]int64, av.Len())
		for i, s := range av.Str {
			if matchLikePlan(s, e.Pattern) != e.Neg {
				out[i] = 1
			}
		}
		return &column.Vector{Typ: column.Int64, I64: out}, nil
	case "in":
		av, err := evalArg(e, 0, env, n)
		if err != nil {
			return nil, err
		}
		if av.Typ != column.String {
			return nil, unsupported("IN list on %v", av.Typ)
		}
		set := make(map[string]bool, len(e.Set))
		for _, s := range e.Set {
			set[s] = true
		}
		out := make([]int64, av.Len())
		for i, s := range av.Str {
			if set[s] {
				out[i] = 1
			}
		}
		return &column.Vector{Typ: column.Int64, I64: out}, nil
	default:
		return nil, unsupported("unknown operator %q", e.Op)
	}
}

func evalArg(e *PlanExpr, i int, env map[string]*column.Vector, n int) (*column.Vector, error) {
	if i >= len(e.Args) {
		return nil, unsupported("%s: missing operand %d", e.Op, i)
	}
	return evalPlanExpr(e.Args[i], env, n)
}

func evalBinary(e *PlanExpr, env map[string]*column.Vector, n int) (*column.Vector, *column.Vector, error) {
	av, err := evalArg(e, 0, env, n)
	if err != nil {
		return nil, nil, err
	}
	bv, err := evalArg(e, 1, env, n)
	if err != nil {
		return nil, nil, err
	}
	return av, bv, nil
}

func evalArith(e *PlanExpr, env map[string]*column.Vector, n int) (*column.Vector, error) {
	av, bv, err := evalBinary(e, env, n)
	if err != nil {
		return nil, err
	}
	if av.Typ == column.String || bv.Typ == column.String {
		return nil, unsupported("arithmetic on strings")
	}
	if av.Typ == column.Int64 && bv.Typ == column.Int64 && e.Op != "div" {
		out := make([]int64, av.Len())
		for i := range out {
			switch e.Op {
			case "add":
				out[i] = av.I64[i] + bv.I64[i]
			case "sub":
				out[i] = av.I64[i] - bv.I64[i]
			case "mul":
				out[i] = av.I64[i] * bv.I64[i]
			}
		}
		return &column.Vector{Typ: column.Int64, I64: out}, nil
	}
	af, bf := planFloats(av), planFloats(bv)
	out := make([]float64, len(af))
	for i := range out {
		switch e.Op {
		case "add":
			out[i] = af[i] + bf[i]
		case "sub":
			out[i] = af[i] - bf[i]
		case "mul":
			out[i] = af[i] * bf[i]
		case "div":
			out[i] = af[i] / bf[i]
		}
	}
	return &column.Vector{Typ: column.Float64, F64: out}, nil
}

func evalCmp(e *PlanExpr, env map[string]*column.Vector, n int) (*column.Vector, error) {
	av, bv, err := evalBinary(e, env, n)
	if err != nil {
		return nil, err
	}
	m := av.Len()
	out := make([]int64, m)
	switch {
	case av.Typ == column.String && bv.Typ == column.String:
		for i := 0; i < m; i++ {
			if cmpHolds(e.Op, strings.Compare(av.Str[i], bv.Str[i])) {
				out[i] = 1
			}
		}
	case av.Typ == column.Int64 && bv.Typ == column.Int64:
		for i := 0; i < m; i++ {
			c := 0
			if av.I64[i] < bv.I64[i] {
				c = -1
			} else if av.I64[i] > bv.I64[i] {
				c = 1
			}
			if cmpHolds(e.Op, c) {
				out[i] = 1
			}
		}
	case av.Typ != column.String && bv.Typ != column.String:
		af, bf := planFloats(av), planFloats(bv)
		for i := 0; i < m; i++ {
			c := 0
			if af[i] < bf[i] {
				c = -1
			} else if af[i] > bf[i] {
				c = 1
			}
			if cmpHolds(e.Op, c) {
				out[i] = 1
			}
		}
	default:
		return nil, unsupported("comparing %v with %v", av.Typ, bv.Typ)
	}
	return &column.Vector{Typ: column.Int64, I64: out}, nil
}

func cmpHolds(op string, c int) bool {
	switch op {
	case "eq":
		return c == 0
	case "ne":
		return c != 0
	case "lt":
		return c < 0
	case "le":
		return c <= 0
	case "gt":
		return c > 0
	default: // "ge"
		return c >= 0
	}
}

func planFloats(v *column.Vector) []float64 {
	if v.Typ == column.Float64 {
		return v.F64
	}
	out := make([]float64, len(v.I64))
	for i, x := range v.I64 {
		out[i] = float64(x)
	}
	return out
}

// matchLikePlan matches s against a '%'-wildcard pattern, identically to the
// reader-side evaluator.
func matchLikePlan(s, pattern string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return s == pattern
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(s, mid)
		if idx < 0 {
			return false
		}
		s = s[idx+len(mid):]
	}
	return strings.HasSuffix(s, last)
}

// updatePlanAgg folds row r of input into st, mirroring the reader's
// accumulator arithmetic.
func updatePlanAgg(st *AggState, a PlanAgg, input *column.Vector, r int) error {
	if a.Expr == nil {
		if a.Func != "count" {
			return unsupported("aggregate %q needs an input expression", a.Func)
		}
		st.Count++
		return nil
	}
	st.Typ = input.Typ
	switch a.Func {
	case "count":
		st.Count++
	case "sum":
		st.Count++
		switch input.Typ {
		case column.Int64:
			st.SumI += input.I64[r]
			st.SumF += float64(input.I64[r])
		case column.Float64:
			st.SumF += input.F64[r]
		default:
			return unsupported("SUM over strings")
		}
	case "min", "max":
		st.Count++
		switch input.Typ {
		case column.Int64:
			x := input.I64[r]
			if !st.Seen || x < st.MinI {
				st.MinI = x
			}
			if !st.Seen || x > st.MaxI {
				st.MaxI = x
			}
		case column.Float64:
			x := input.F64[r]
			if !st.Seen || x < st.MinF {
				st.MinF = x
			}
			if !st.Seen || x > st.MaxF {
				st.MaxF = x
			}
		default:
			x := input.Str[r]
			if !st.Seen || x < st.MinS {
				st.MinS = x
			}
			if !st.Seen || x > st.MaxS {
				st.MaxS = x
			}
		}
		st.Seen = true
	default:
		return unsupported("unknown aggregate %q", a.Func)
	}
	return nil
}

// Merge folds the partial state o into st (o's rows follow st's).
func (st *AggState) Merge(o AggState) {
	if o.Count == 0 && !o.Seen {
		return
	}
	st.Typ = o.Typ
	st.Count += o.Count
	st.SumI += o.SumI
	st.SumF += o.SumF
	if o.Seen {
		switch o.Typ {
		case column.Int64:
			if !st.Seen || o.MinI < st.MinI {
				st.MinI = o.MinI
			}
			if !st.Seen || o.MaxI > st.MaxI {
				st.MaxI = o.MaxI
			}
		case column.Float64:
			if !st.Seen || o.MinF < st.MinF {
				st.MinF = o.MinF
			}
			if !st.Seen || o.MaxF > st.MaxF {
				st.MaxF = o.MaxF
			}
		default:
			if !st.Seen || o.MinS < st.MinS {
				st.MinS = o.MinS
			}
			if !st.Seen || o.MaxS > st.MaxS {
				st.MaxS = o.MaxS
			}
		}
		st.Seen = true
	}
}

// evalSelect runs the plan against the decoded column vectors. raw holds the
// stored (possibly compressed) images parallel to req.Cols; the vectors are
// decoded from them.
func evalSelect(req SelectRequest, raw [][]byte) (*SelectResult, error) {
	res := &SelectResult{}
	env := make(map[string]*column.Vector, len(req.Cols))
	n := -1
	for i, c := range req.Cols {
		res.ScannedBytes += int64(len(raw[i]))
		img := raw[i]
		if req.Flate {
			r := flate.NewReader(bytes.NewReader(img))
			out, err := io.ReadAll(r)
			r.Close()
			if err != nil {
				return nil, unsupported("inflate %q: %v", c.Key, err)
			}
			img = out
		}
		v, err := column.DecodeSegment(img)
		if err != nil {
			return nil, unsupported("decode %q: %v", c.Key, err)
		}
		if n >= 0 && v.Len() != n {
			return nil, unsupported("column %q has %d rows, want %d", c.Name, v.Len(), n)
		}
		n = v.Len()
		env[c.Name] = v
	}
	if n < 0 {
		n = 0
	}

	rows := make([]int, 0, n)
	if req.Plan.Filter != nil {
		pv, err := evalPlanExpr(req.Plan.Filter, env, n)
		if err != nil {
			return nil, err
		}
		if pv.Typ != column.Int64 {
			return nil, unsupported("filter yields %v", pv.Typ)
		}
		for i, x := range pv.I64 {
			if x != 0 {
				rows = append(rows, i)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			rows = append(rows, i)
		}
	}

	if len(req.Plan.Aggs) > 0 {
		// Aggregate mode: fold the qualifying rows into partial states.
		// Inputs are evaluated over the filtered mini-batch so constant
		// broadcasts size correctly.
		fenv := make(map[string]*column.Vector, len(env))
		for name, v := range env {
			fenv[name] = v.Gather(rows)
		}
		res.Aggs = make([]AggState, len(req.Plan.Aggs))
		for i, a := range req.Plan.Aggs {
			var input *column.Vector
			if a.Expr != nil {
				v, err := evalPlanExpr(a.Expr, fenv, len(rows))
				if err != nil {
					return nil, err
				}
				input = v
			}
			for r := 0; r < len(rows); r++ {
				if err := updatePlanAgg(&res.Aggs[i], a, input, r); err != nil {
					return nil, err
				}
			}
			// One partial state is ~64 bytes on the wire.
			res.ReturnedBytes += 64
		}
		res.Rows = len(rows)
		return res, nil
	}

	// Row mode: re-encode the qualifying rows of the projected columns.
	res.Rows = len(rows)
	res.Cols = make([][]byte, len(req.Plan.Project))
	for i, name := range req.Plan.Project {
		v, ok := env[name]
		if !ok {
			return nil, unsupported("projected column %q not in request", name)
		}
		enc := column.EncodeSegment(v.Gather(rows))
		res.Cols[i] = enc
		res.ReturnedBytes += int64(len(enc))
	}
	return res, nil
}

var _ Selector = (*MemStore)(nil)

// Select implements Selector: the simulated store's compute endpoint. The
// request model follows Get per column object — fault injection at the
// dedicated obj.select site, per-prefix throttling, and the same visibility
// rules (a not-yet-visible column answers ErrNotFound so callers retry or
// fall back). Latency is charged on the bytes scanned; the network and
// bandwidth resources are charged only on the bytes returned — that
// asymmetry is the entire point of pushdown.
func (s *MemStore) Select(ctx context.Context, req SelectRequest) (*SelectResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.metrics.selects.Add(1)
	detail := ""
	if len(req.Cols) > 0 {
		detail = req.Cols[0].Key
	}
	if err := s.inject("select", faultinject.ObjSelect, detail); err != nil {
		return nil, err
	}
	for _, c := range req.Cols {
		s.throttlePrefix(c.Key)
	}

	raw := make([][]byte, len(req.Cols))
	s.mu.Lock()
	for i, c := range req.Cols {
		o, ok := s.objects[c.Key]
		if !ok {
			s.mu.Unlock()
			s.metrics.getMisses.Add(1)
			s.scale.Sleep(s.cfg.ReadLatency.Duration(0, s.rnd))
			return nil, fmt.Errorf("select %q: %w", c.Key, ErrNotFound)
		}
		if o.missLeft > 0 {
			o.missLeft--
			s.mu.Unlock()
			s.metrics.getMisses.Add(1)
			s.scale.Sleep(s.cfg.ReadLatency.Duration(0, s.rnd))
			return nil, fmt.Errorf("select %q: %w", c.Key, ErrNotFound)
		}
		version := o.versions[len(o.versions)-1]
		if o.staleLeft > 0 && len(o.versions) > 1 {
			o.staleLeft--
			version = o.versions[len(o.versions)-2]
		}
		raw[i] = version
	}
	s.mu.Unlock()

	res, err := evalSelect(req, raw)
	if err != nil {
		// The store scanned nothing billable: plan rejection is answered
		// from object metadata before any evaluation completes.
		return nil, err
	}

	// Service time is driven by the bytes the store itself had to scan;
	// only the result crosses the shared network.
	s.scale.Sleep(s.cfg.ReadLatency.Duration(int(res.ScannedBytes), s.rnd))
	s.cfg.Network.Acquire(int(res.ReturnedBytes))
	s.cfg.Bandwidth.Acquire(int(res.ReturnedBytes))
	s.metrics.bytesOut.Add(res.ReturnedBytes)
	s.metrics.selScanned.Add(res.ScannedBytes)
	s.metrics.selReturned.Add(res.ReturnedBytes)
	return res, nil
}
