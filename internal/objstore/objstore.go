// Package objstore defines the object-store abstraction that cloud dbspaces
// are built on, together with an in-memory simulated store that reproduces
// the behaviours of AWS S3 circa 2020 that the paper designs around:
// eventual consistency (a freshly written object may be reported as missing;
// an overwritten object may serve stale data), high per-request latency with
// high aggregate throughput, per-prefix request throttling, and per-request
// billing.
package objstore

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrNotFound is returned by Get when the key does not exist — or, under
// eventual consistency, when it exists but is not yet visible to the caller.
var ErrNotFound = errors.New("objstore: object not found")

// ErrInjected is the base error for failures injected by test configuration.
var ErrInjected = errors.New("objstore: injected failure")

// Store is the minimal object-store contract used by the engine. Delete is
// idempotent (deleting a missing key succeeds), matching S3 semantics.
type Store interface {
	// Put stores data under key. Keys may be written at most once by the
	// engine (never-write-twice); the store itself does not enforce this.
	Put(ctx context.Context, key string, data []byte) error
	// Get returns the object's contents, or ErrNotFound.
	Get(ctx context.Context, key string) ([]byte, error)
	// Delete removes the object if present.
	Delete(ctx context.Context, key string) error
	// Exists reports whether the key is currently visible.
	Exists(ctx context.Context, key string) (bool, error)
	// List returns all visible keys with the given prefix, sorted.
	List(ctx context.Context, prefix string) ([]string, error)
}

// Metrics counts the requests issued against a store. All fields are
// maintained atomically; read them with the accessor methods.
type Metrics struct {
	puts, gets, deletes, lists atomic.Int64
	getMisses                  atomic.Int64
	bytesIn, bytesOut          atomic.Int64
	selects                    atomic.Int64
	selScanned, selReturned    atomic.Int64
}

// Puts returns the number of PUT requests.
func (m *Metrics) Puts() int64 { return m.puts.Load() }

// Gets returns the number of GET requests (including misses).
func (m *Metrics) Gets() int64 { return m.gets.Load() }

// GetMisses returns the number of GET requests that returned ErrNotFound.
func (m *Metrics) GetMisses() int64 { return m.getMisses.Load() }

// Deletes returns the number of DELETE requests.
func (m *Metrics) Deletes() int64 { return m.deletes.Load() }

// Lists returns the number of LIST requests.
func (m *Metrics) Lists() int64 { return m.lists.Load() }

// BytesIn returns the number of bytes uploaded.
func (m *Metrics) BytesIn() int64 { return m.bytesIn.Load() }

// BytesOut returns the number of bytes downloaded.
func (m *Metrics) BytesOut() int64 { return m.bytesOut.Load() }

// Selects returns the number of SELECT (pushdown) requests.
func (m *Metrics) Selects() int64 { return m.selects.Load() }

// SelectScannedBytes returns the stored bytes scanned by SELECT requests —
// the basis of the per-GB-scanned compute charge.
func (m *Metrics) SelectScannedBytes() int64 { return m.selScanned.Load() }

// SelectReturnedBytes returns the bytes SELECT requests sent back over the
// network (a subset of BytesOut).
func (m *Metrics) SelectReturnedBytes() int64 { return m.selReturned.Load() }

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.puts.Store(0)
	m.gets.Store(0)
	m.deletes.Store(0)
	m.lists.Store(0)
	m.getMisses.Store(0)
	m.bytesIn.Store(0)
	m.bytesOut.Store(0)
	m.selects.Store(0)
	m.selScanned.Store(0)
	m.selReturned.Store(0)
}

// String renders the counters for logs and experiment reports.
func (m *Metrics) String() string {
	return fmt.Sprintf("puts=%d gets=%d (misses=%d) selects=%d deletes=%d lists=%d in=%dB out=%dB sel-scan=%dB sel-ret=%dB",
		m.Puts(), m.Gets(), m.GetMisses(), m.Selects(), m.Deletes(), m.Lists(),
		m.BytesIn(), m.BytesOut(), m.SelectScannedBytes(), m.SelectReturnedBytes())
}
