package delta

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cloudiq/internal/column"
	"cloudiq/internal/faultinject"
	"cloudiq/internal/table"
)

func kvSchema() table.Schema {
	return table.Schema{Cols: []table.ColumnDef{
		{Name: "k", Typ: column.Int64},
		{Name: "v", Typ: column.String},
	}}
}

func kvBatch(base, n int) *table.Batch {
	b := table.NewBatch(kvSchema())
	for i := 0; i < n; i++ {
		b.Vecs[0].AppendInt(int64(base + i))
		b.Vecs[1].AppendStr(fmt.Sprintf("val-%d", base+i))
	}
	return b
}

func keys(v *View) []int64 {
	if v == nil {
		return nil
	}
	return v.DeltaBatch().Col("k").I64
}

func TestVisibilityBySequence(t *testing.T) {
	s := NewStore()
	s.Apply("t", kvBatch(0, 3), 5)
	s.Apply("t", kvBatch(3, 2), 7)

	if v := s.View("t", 4); v != nil {
		t.Fatalf("snapshot 4 sees %v, want nothing", keys(v))
	}
	if got := keys(s.View("t", 5)); len(got) != 3 {
		t.Fatalf("snapshot 5 sees %v, want 3 rows", got)
	}
	if got := keys(s.View("t", 7)); len(got) != 5 {
		t.Fatalf("snapshot 7 sees %v, want 5 rows", got)
	}
	if got := s.LiveRows("t", 6); got != 3 {
		t.Fatalf("LiveRows at 6 = %d, want 3", got)
	}
}

func TestCompactionSwapVisibility(t *testing.T) {
	s := NewStore()
	s.Apply("t", kvBatch(0, 4), 5)
	rows, through := s.Frozen("t")
	if rows.Rows() != 4 || through != 4 {
		t.Fatalf("Frozen = %d rows through %d, want 4/4", rows.Rows(), through)
	}
	// Compacting commit publishes at seq 9.
	s.MarkCompacted("t", through, 9)

	// A reader pinned before the swap still sees the rows in the delta.
	if got := keys(s.View("t", 8)); len(got) != 4 {
		t.Fatalf("pre-swap snapshot sees %v, want 4 rows", got)
	}
	// A reader at/after the swap reads them from segments instead.
	if v := s.View("t", 9); v != nil {
		t.Fatalf("post-swap snapshot sees %v in delta, want nothing", keys(v))
	}
	// Retirement honors the oldest snapshot.
	if n := s.Retire(8); n != 0 {
		t.Fatalf("Retire(8) released %d rows while a pre-swap reader could exist", n)
	}
	if n := s.Retire(9); n != 4 {
		t.Fatalf("Retire(9) released %d rows, want 4", n)
	}
}

func TestFreezeWatermarkLimitsDrain(t *testing.T) {
	s := NewStore()
	s.Apply("t", kvBatch(0, 3), 2)
	if n := s.Freeze("t"); n != 3 {
		t.Fatalf("Freeze froze %d rows, want 3", n)
	}
	// Rows landing after the freeze ride the next cycle.
	s.Apply("t", kvBatch(3, 2), 3)
	rows, through := s.Frozen("t")
	if rows.Rows() != 3 || through != 3 {
		t.Fatalf("Frozen = %d rows through %d, want 3/3", rows.Rows(), through)
	}
	s.MarkCompacted("t", through, 4)
	// The watermark resets; the next drain picks up the rest.
	rows, through = s.Frozen("t")
	if rows.Rows() != 2 || through != 5 {
		t.Fatalf("second Frozen = %d rows through %d, want 2/5", rows.Rows(), through)
	}
}

func TestDropHidesLiveRuns(t *testing.T) {
	s := NewStore()
	s.Apply("t", kvBatch(0, 3), 2)
	s.Drop("t", 5)
	if got := keys(s.View("t", 4)); len(got) != 3 {
		t.Fatalf("pre-drop snapshot sees %v, want 3 rows", got)
	}
	if v := s.View("t", 5); v != nil {
		t.Fatalf("post-drop snapshot sees %v, want nothing", keys(v))
	}
	if got := s.Tables(); len(got) != 0 {
		t.Fatalf("Tables = %v after drop, want none", got)
	}
}

func TestMarshalRestoreRoundTrip(t *testing.T) {
	s := NewStore()
	s.Apply("a", kvBatch(0, 3), 2)
	s.Apply("b", kvBatch(0, 5), 3)
	rows, through := s.Frozen("a")
	s.MarkCompacted("a", through, 4)
	if rows.Rows() != 3 {
		t.Fatalf("frozen %d rows, want 3", rows.Rows())
	}

	img, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: same state, same bytes.
	img2, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(img) != string(img2) {
		t.Fatal("Marshal is not deterministic")
	}

	r := NewStore()
	if err := r.Restore(img); err != nil {
		t.Fatal(err)
	}
	// The image carries only live runs: a's absorbed rows are gone (an
	// image is only restored into worlds with no older snapshots), b's
	// rows survive, and row ids keep counting from where they were.
	if v := r.View("a", 99); v != nil {
		t.Fatalf("restored a sees %v, want nothing", keys(v))
	}
	if got := keys(r.View("b", 99)); len(got) != 5 {
		t.Fatalf("restored b sees %v, want 5 rows", got)
	}
	if base := r.Apply("a", kvBatch(3, 1), 9); base != 3 {
		t.Fatalf("post-restore row id = %d, want 3", base)
	}
}

func TestInsertRecordRoundTrip(t *testing.T) {
	in := InsertRecord{TxnID: 42, Table: "t", Rows: kvBatch(7, 3)}
	payload, err := EncodeInsert(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeInsert(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.TxnID != 42 || out.Table != "t" || out.Rows.Rows() != 3 || out.Rows.Col("k").I64[0] != 7 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestCompactorFaultLeavesRowsLive(t *testing.T) {
	for _, site := range []faultinject.Site{
		faultinject.DeltaCompact,
		faultinject.DeltaCompact.With("swap"),
	} {
		s := NewStore()
		s.Apply("t", kvBatch(0, 4), 2)
		plan := faultinject.New(1)
		plan.Always(site)
		drained := 0
		c := &Compactor{Store: s, Faults: plan, Drain: func(ctx context.Context, tbl string, rows *table.Batch, through uint64) error {
			drained += rows.Rows()
			s.MarkCompacted(tbl, through, 3)
			return nil
		}}
		if _, err := c.CompactAll(context.Background()); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("site %s: err = %v, want injected", site, err)
		}
		if drained != 0 {
			t.Fatalf("site %s: drained %d rows through a faulted cycle", site, drained)
		}
		if got := s.LiveRows("t", 99); got != 4 {
			t.Fatalf("site %s: %d rows live after abandoned cycle, want 4", site, got)
		}
		// The next, unfaulted cycle completes the drain.
		plan.Clear(site)
		n, err := c.CompactAll(context.Background())
		if err != nil || n != 4 {
			t.Fatalf("site %s: retry drained %d rows, err %v", site, n, err)
		}
		if got := s.LiveRows("t", 99); got != 0 {
			t.Fatalf("site %s: %d rows live after drain", site, got)
		}
	}
}

func TestCompactorFailedDrainKeepsRows(t *testing.T) {
	s := NewStore()
	s.Apply("t", kvBatch(0, 4), 2)
	boom := errors.New("doomed commit")
	c := &Compactor{Store: s, Drain: func(ctx context.Context, tbl string, rows *table.Batch, through uint64) error {
		return boom
	}}
	if _, err := c.CompactTable(context.Background(), "t"); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := s.LiveRows("t", 99); got != 4 {
		t.Fatalf("%d rows live after failed drain, want 4", got)
	}
}
