package delta

import (
	"context"
	"fmt"

	"cloudiq/internal/faultinject"
	"cloudiq/internal/table"
)

// DrainFunc is the engine-side half of a compaction cycle: append rows to
// the table's columnar main inside a fresh transaction and commit it with a
// publication that calls Store.MarkCompacted(table, through, seq) at the
// commit's sequence. The call must be all-or-nothing — on error the
// transaction rolls back and the delta rows stay live.
type DrainFunc func(ctx context.Context, tbl string, rows *table.Batch, through uint64) error

// Compactor drains frozen delta runs into encoded column pages. Each cycle
// passes the delta.compact fault site twice: once when it picks up a table
// and once immediately before the drain transaction runs, so the crash
// simulator can abandon a cycle before any work or between the page writes
// and the swap. Either way the delta rows remain live and a later cycle
// (or recovery) repeats the drain against fresh object keys — the
// never-write-twice discipline makes the retry safe.
type Compactor struct {
	// Store is the registry being drained.
	Store *Store
	// Faults guards the cycle; a nil plan injects nothing.
	Faults *faultinject.Plan
	// Drain performs one table's drain transaction.
	Drain DrainFunc
}

// CompactTable runs one compaction cycle for a single table, returning how
// many rows were drained (zero when the table has nothing below its freeze
// watermark).
func (c *Compactor) CompactTable(ctx context.Context, name string) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := c.Faults.Check(faultinject.DeltaCompact, name); err != nil {
		return 0, fmt.Errorf("delta: compact %s: %w", name, err)
	}
	rows, through := c.Store.Frozen(name)
	if rows == nil {
		return 0, nil
	}
	if err := c.Faults.Check(faultinject.DeltaCompact.With("swap"), name); err != nil {
		return 0, fmt.Errorf("delta: compact %s: swap: %w", name, err)
	}
	if err := c.Drain(ctx, name, rows, through); err != nil {
		return 0, fmt.Errorf("delta: compact %s: %w", name, err)
	}
	return rows.Rows(), nil
}

// CompactAll runs one cycle over every table with live delta rows, in name
// order, and returns the total rows drained. It stops at the first error;
// rows drained by earlier tables in the pass stay drained (each table's
// cycle is its own transaction).
func (c *Compactor) CompactAll(ctx context.Context) (int, error) {
	total := 0
	for _, name := range c.Store.Tables() {
		n, err := c.CompactTable(ctx, name)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
