// Package delta implements the write-optimized half of the HTAP-lite ingest
// lane: a per-table, row-oriented, in-memory delta store that absorbs trickle
// inserts between bulk loads. Durability comes from the transaction log — the
// engine appends a RecDeltaInsert record before commit and replays it after a
// crash — so delta rows never touch the object store until a background
// compactor drains them into encoded column pages through the ordinary
// never-write-twice table append path.
//
// Visibility follows the engine's snapshot-sequence MVCC rules. Every run of
// rows carries the commit sequence that published it (Seq) and, once a
// compaction has absorbed it, the sequence of the compacting commit
// (CompactedAt). A snapshot at sequence s sees a run exactly when
//
//	run.Seq <= s && (run.CompactedAt == 0 || run.CompactedAt > s)
//
// which makes the compaction swap invisible: readers older than the swap keep
// reading the rows from the delta (their table version predates the drained
// segments), readers at or after the swap read them from the columnar main
// (the delta hides the absorbed runs). Absorbed runs are physically retired
// once the oldest live snapshot has advanced past their CompactedAt.
package delta

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"cloudiq/internal/table"
)

// Run is one committed batch of delta rows. Runs are immutable after Apply
// except for the CompactedAt stamp, which is written once under the store
// lock when a compaction commit publishes.
type Run struct {
	// BaseID is the table-local row id of the first row; ids are dense, so
	// the run covers [BaseID, BaseID+Rows.Rows()).
	BaseID uint64
	// Seq is the commit sequence that made the run visible.
	Seq uint64
	// CompactedAt is the commit sequence of the compaction that absorbed
	// the run into column segments, or zero while the run is live.
	CompactedAt uint64
	// Rows holds the run's rows in the table's full schema.
	Rows *table.Batch
}

// end returns the row id one past the run.
func (r *Run) end() uint64 { return r.BaseID + uint64(r.Rows.Rows()) }

// visibleAt reports whether a snapshot at sequence snap sees the run.
func (r *Run) visibleAt(snap uint64) bool {
	return r.Seq <= snap && (r.CompactedAt == 0 || r.CompactedAt > snap)
}

// tableDelta is one table's delta state.
type tableDelta struct {
	nextID uint64 // next row id to assign
	frozen uint64 // freeze watermark (row id); 0 = none pending
	runs   []*Run // ordered by BaseID
}

// Store is one node's delta registry: table name → committed delta runs.
// It is safe for concurrent use; Views materialize their rows eagerly so a
// scan never races a compaction stamp.
type Store struct {
	mu     sync.Mutex
	tables map[string]*tableDelta
}

// NewStore returns an empty registry.
func NewStore() *Store {
	return &Store{tables: make(map[string]*tableDelta)}
}

func (s *Store) tableLocked(name string) *tableDelta {
	td, ok := s.tables[name]
	if !ok {
		td = &tableDelta{}
		s.tables[name] = td
	}
	return td
}

// cloneBatch deep-copies a batch so runs stay immutable regardless of what
// the caller does with its buffers afterwards.
func cloneBatch(b *table.Batch) *table.Batch {
	out := table.NewBatch(b.Schema)
	appendBatch(out, b)
	return out
}

// appendBatch appends all rows of src to dst (schemas must match).
func appendBatch(dst, src *table.Batch) {
	for i, v := range src.Vecs {
		d := dst.Vecs[i]
		d.I64 = append(d.I64, v.I64...)
		d.F64 = append(d.F64, v.F64...)
		d.Str = append(d.Str, v.Str...)
	}
}

// Apply lands one committed run of rows for a table and returns the base row
// id it was assigned. The engine calls it inside the commit critical section
// (and from log replay, in the same order), so row ids are deterministic.
func (s *Store) Apply(name string, rows *table.Batch, seq uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	td := s.tableLocked(name)
	run := &Run{BaseID: td.nextID, Seq: seq, Rows: cloneBatch(rows)}
	td.nextID = run.end()
	td.runs = append(td.runs, run)
	return run.BaseID
}

// View is an immutable snapshot of a table's visible delta rows; it plugs
// into table.Table as its DeltaView so scans can merge the rows.
type View struct {
	rows *table.Batch
}

// DeltaBatch returns the visible rows in the table's full schema.
func (v *View) DeltaBatch() *table.Batch { return v.rows }

// View materializes the delta rows of name visible to a snapshot at snap,
// or nil when there are none (so callers can attach nil and keep the
// fast all-columnar path, including pushdown).
func (s *Store) View(name string, snap uint64) *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	td, ok := s.tables[name]
	if !ok {
		return nil
	}
	var out *table.Batch
	for _, r := range td.runs {
		if !r.visibleAt(snap) {
			continue
		}
		if out == nil {
			out = table.NewBatch(r.Rows.Schema)
		}
		appendBatch(out, r.Rows)
	}
	if out == nil {
		return nil
	}
	return &View{rows: out}
}

// LiveRows counts the delta rows of name visible to a snapshot at snap.
func (s *Store) LiveRows(name string, snap uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	td, ok := s.tables[name]
	if !ok {
		return 0
	}
	n := 0
	for _, r := range td.runs {
		if r.visibleAt(snap) {
			n += r.Rows.Rows()
		}
	}
	return n
}

// Freeze seals the current end of name's delta as the compaction watermark
// and returns how many uncompacted rows sit below it. A subsequent
// compaction cycle drains only rows below the watermark, so inserts that
// land after the freeze ride the next cycle. The watermark is volatile — a
// crash simply loses the hint and the next cycle freezes afresh.
func (s *Store) Freeze(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	td, ok := s.tables[name]
	if !ok {
		return 0
	}
	td.frozen = td.nextID
	n := 0
	for _, r := range td.runs {
		if r.CompactedAt == 0 && r.end() <= td.frozen {
			n += r.Rows.Rows()
		}
	}
	return n
}

// Frozen collects the live runs of name below its freeze watermark (or all
// live runs when no freeze is pending) into one batch, returning the batch
// and the row-id watermark the drain covers. It returns (nil, 0) when there
// is nothing to drain.
func (s *Store) Frozen(name string) (*table.Batch, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	td, ok := s.tables[name]
	if !ok {
		return nil, 0
	}
	through := td.frozen
	if through == 0 {
		through = td.nextID
	}
	var out *table.Batch
	for _, r := range td.runs {
		if r.CompactedAt != 0 || r.end() > through {
			continue
		}
		if out == nil {
			out = table.NewBatch(r.Rows.Schema)
		}
		appendBatch(out, r.Rows)
	}
	if out == nil {
		return nil, 0
	}
	return out, through
}

// MarkCompacted stamps every live run of name that lies fully below through
// with the compacting commit's sequence. The engine calls it inside the
// commit critical section of the drain transaction, atomically with the
// publication of the table version that carries the drained segments.
func (s *Store) MarkCompacted(name string, through, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	td, ok := s.tables[name]
	if !ok {
		return
	}
	for _, r := range td.runs {
		if r.CompactedAt == 0 && r.end() <= through {
			r.CompactedAt = seq
		}
	}
	if td.frozen != 0 && td.frozen <= through {
		td.frozen = 0
	}
}

// Drop hides every live run of name from snapshots at or after seq — the
// delta half of DROP TABLE. Older snapshots keep reading the rows until
// Retire collects them.
func (s *Store) Drop(name string, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	td, ok := s.tables[name]
	if !ok {
		return
	}
	for _, r := range td.runs {
		if r.CompactedAt == 0 {
			r.CompactedAt = seq
		}
	}
	td.frozen = 0
}

// Retire physically removes absorbed runs no snapshot can still see: those
// with CompactedAt != 0 and CompactedAt <= oldest, where oldest is the
// oldest live snapshot sequence. It returns how many rows were released.
func (s *Store) Retire(oldest uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		td := s.tables[name]
		kept := td.runs[:0]
		for _, r := range td.runs {
			if r.CompactedAt != 0 && r.CompactedAt <= oldest {
				n += r.Rows.Rows()
				continue
			}
			kept = append(kept, r)
		}
		td.runs = kept
	}
	return n
}

// Tables returns, sorted, the names of tables with at least one live run.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for name, td := range s.tables {
		for _, r := range td.runs {
			if r.CompactedAt == 0 {
				names = append(names, name)
				break
			}
		}
	}
	sort.Strings(names)
	return names
}

// imageTable is the serialized form of one table's residual delta. Only
// live runs are captured: images are cut at checkpoints and snapshots, and
// both restore into a world with no snapshots older than the image, so
// absorbed runs can never be seen again.
type imageTable struct {
	Name   string
	NextID uint64
	Runs   []*Run
}

// Marshal serializes the residual (live) delta for checkpoints and database
// snapshots. Tables are emitted in name order so the image bytes are a
// deterministic function of the state.
func (s *Store) Marshal() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var img []imageTable
	for _, name := range names {
		td := s.tables[name]
		it := imageTable{Name: name, NextID: td.nextID}
		for _, r := range td.runs {
			if r.CompactedAt == 0 {
				it.Runs = append(it.Runs, r)
			}
		}
		if it.NextID == 0 && len(it.Runs) == 0 {
			continue
		}
		img = append(img, it)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("delta: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the registry's contents with a Marshal image.
func (s *Store) Restore(img []byte) error {
	var tables []imageTable
	if len(img) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(img)).Decode(&tables); err != nil {
			return fmt.Errorf("delta: restore: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables = make(map[string]*tableDelta)
	for _, it := range tables {
		s.tables[it.Name] = &tableDelta{nextID: it.NextID, runs: it.Runs}
	}
	return nil
}

// InsertRecord is the payload of a wal.RecDeltaInsert record: rows staged
// by one transaction into one table. The commit record that follows makes
// them visible; without it the record is an orphan and replay drops it.
type InsertRecord struct {
	TxnID uint64
	Table string
	Rows  *table.Batch
}

// EncodeInsert serializes an InsertRecord for the log.
func EncodeInsert(rec InsertRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("delta: encode insert record: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeInsert parses a wal.RecDeltaInsert payload.
func DecodeInsert(payload []byte) (InsertRecord, error) {
	var rec InsertRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return InsertRecord{}, fmt.Errorf("delta: decode insert record: %w", err)
	}
	return rec, nil
}
