// Package catalog implements the system catalog: the versioned mapping from
// object names (tables) to blockmap identities. Identities live on strongly
// consistent storage (the system dbspace) and are updated in place (§3.1);
// versioning at this level is what gives the engine table-level MVCC —
// a reader at snapshot s sees, for each table, the identity published by the
// last commit at or before s.
package catalog

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"cloudiq/internal/core"
)

// Version is one published identity of a named object.
type Version struct {
	Seq uint64 // commit sequence that published it
	ID  core.Identity
	// Dropped marks a deletion: lookups at or after Seq see no object.
	Dropped bool
}

// Catalog is the versioned name → identity map. It is safe for concurrent
// use.
type Catalog struct {
	mu      sync.RWMutex
	objects map[string][]Version // ascending by Seq
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{objects: make(map[string][]Version)}
}

// Publish records id as the version of name as of commit sequence seq.
// Sequences must be published in non-decreasing order per name.
func (c *Catalog) Publish(name string, id core.Identity, seq uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	vs := c.objects[name]
	if len(vs) > 0 && vs[len(vs)-1].Seq > seq {
		return fmt.Errorf("catalog: publish %s at seq %d after seq %d", name, seq, vs[len(vs)-1].Seq)
	}
	c.objects[name] = append(vs, Version{Seq: seq, ID: id})
	return nil
}

// Drop records the deletion of name as of seq.
func (c *Catalog) Drop(name string, seq uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	vs := c.objects[name]
	if len(vs) == 0 {
		return fmt.Errorf("catalog: drop of unknown object %q", name)
	}
	if vs[len(vs)-1].Seq > seq {
		return fmt.Errorf("catalog: drop %s at seq %d after seq %d", name, seq, vs[len(vs)-1].Seq)
	}
	c.objects[name] = append(vs, Version{Seq: seq, Dropped: true})
	return nil
}

// Lookup returns the identity of name visible at snapshot snap.
func (c *Catalog) Lookup(name string, snap uint64) (core.Identity, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	vs := c.objects[name]
	// Last version with Seq <= snap.
	i := sort.Search(len(vs), func(i int) bool { return vs[i].Seq > snap })
	if i == 0 {
		return core.Identity{}, false
	}
	v := vs[i-1]
	if v.Dropped {
		return core.Identity{}, false
	}
	return v.ID, true
}

// Names returns the objects visible at snapshot snap, sorted.
func (c *Catalog) Names(snap uint64) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var names []string
	for name, vs := range c.objects {
		i := sort.Search(len(vs), func(i int) bool { return vs[i].Seq > snap })
		if i > 0 && !vs[i-1].Dropped {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Prune discards versions that are invisible to every snapshot at or after
// oldest: for each name, all versions strictly older than the last version
// with Seq <= oldest.
func (c *Catalog) Prune(oldest uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, vs := range c.objects {
		i := sort.Search(len(vs), func(i int) bool { return vs[i].Seq > oldest })
		if i == 0 {
			continue
		}
		kept := vs[i-1:]
		if len(kept) == 1 && kept[0].Dropped {
			delete(c.objects, name)
			continue
		}
		c.objects[name] = append([]Version(nil), kept...)
	}
}

// VersionCount reports the stored versions of name (for tests and tooling).
func (c *Catalog) VersionCount(name string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.objects[name])
}

// Marshal serializes the catalog (stored in the system dbspace, updated in
// place).
func (c *Catalog) Marshal() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c.objects); err != nil {
		return nil, fmt.Errorf("catalog: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal restores a catalog from Marshal output.
func Unmarshal(data []byte) (*Catalog, error) {
	c := New()
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c.objects); err != nil {
		return nil, fmt.Errorf("catalog: decode: %w", err)
	}
	return c, nil
}
