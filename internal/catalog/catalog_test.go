package catalog

import (
	"reflect"
	"testing"

	"cloudiq/internal/core"
	"cloudiq/internal/rfrb"
)

func ident(key uint64) core.Identity {
	return core.Identity{Root: core.Entry{Loc: rfrb.CloudKeyBase + key, Size: 1}, Fanout: 4}
}

func TestPublishAndSnapshotVisibility(t *testing.T) {
	c := New()
	if err := c.Publish("lineitem", ident(1), 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("lineitem", ident(2), 9); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("lineitem", 4); ok {
		t.Fatal("visible before first publish")
	}
	if id, ok := c.Lookup("lineitem", 5); !ok || id != ident(1) {
		t.Fatalf("at 5: %v %v", id, ok)
	}
	if id, ok := c.Lookup("lineitem", 8); !ok || id != ident(1) {
		t.Fatalf("at 8: %v %v", id, ok)
	}
	if id, ok := c.Lookup("lineitem", 100); !ok || id != ident(2) {
		t.Fatalf("at 100: %v %v", id, ok)
	}
	if _, ok := c.Lookup("ghost", 100); ok {
		t.Fatal("unknown object visible")
	}
}

func TestPublishOutOfOrderRejected(t *testing.T) {
	c := New()
	_ = c.Publish("t", ident(1), 10)
	if err := c.Publish("t", ident(2), 9); err == nil {
		t.Fatal("out-of-order publish accepted")
	}
}

func TestDrop(t *testing.T) {
	c := New()
	_ = c.Publish("t", ident(1), 1)
	if err := c.Drop("t", 5); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("t", 3); !ok {
		t.Fatal("pre-drop snapshot lost visibility")
	}
	if _, ok := c.Lookup("t", 5); ok {
		t.Fatal("visible at drop seq")
	}
	if err := c.Drop("nope", 9); err == nil {
		t.Fatal("drop of unknown accepted")
	}
	if err := c.Drop("t", 2); err == nil {
		t.Fatal("out-of-order drop accepted")
	}
}

func TestNames(t *testing.T) {
	c := New()
	_ = c.Publish("b", ident(1), 1)
	_ = c.Publish("a", ident(2), 3)
	_ = c.Drop("b", 4)
	if got := c.Names(2); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Names(2) = %v", got)
	}
	if got := c.Names(3); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names(3) = %v", got)
	}
	if got := c.Names(10); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Names(10) = %v", got)
	}
}

func TestPrune(t *testing.T) {
	c := New()
	_ = c.Publish("t", ident(1), 1)
	_ = c.Publish("t", ident(2), 5)
	_ = c.Publish("t", ident(3), 9)
	c.Prune(6) // versions visible at >= 6: seq 5 and 9
	if got := c.VersionCount("t"); got != 2 {
		t.Fatalf("versions after prune = %d", got)
	}
	if id, ok := c.Lookup("t", 7); !ok || id != ident(2) {
		t.Fatalf("Lookup(7) after prune = %v %v", id, ok)
	}
	// Pruning past a drop removes the object entirely.
	_ = c.Drop("t", 12)
	c.Prune(20)
	if got := c.VersionCount("t"); got != 0 {
		t.Fatalf("versions after drop+prune = %d", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := New()
	_ = c.Publish("x", ident(7), 2)
	_ = c.Publish("y", ident(8), 3)
	_ = c.Drop("y", 4)
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := got.Lookup("x", 5); !ok || id != ident(7) {
		t.Fatalf("restored x = %v %v", id, ok)
	}
	if _, ok := got.Lookup("y", 5); ok {
		t.Fatal("restored y visible after drop")
	}
	if _, err := Unmarshal([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}
