// Package index implements the High-Group (HG) index [21]: a sorted
// directory of distinct key values, each pointing at a compressed bitmap of
// the row ids holding that value — combining B+-tree-style ordered lookup
// with bitmap scalability. Row-id bitmaps reuse the engine's range-coalesced
// bitmap representation.
package index

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cloudiq/internal/column"
	"cloudiq/internal/rfrb"
)

// HG is a High-Group index over one column. Build it incrementally with Add
// and query with Lookup/LookupRange. HG is not safe for concurrent mutation;
// lookups after construction are safe concurrently.
type HG struct {
	typ column.Type

	intKeys map[int64]*rfrb.Bitmap
	strKeys map[string]*rfrb.Bitmap

	sortedI []int64  // built lazily for range lookups
	sortedS []string // built lazily
	dirty   bool
}

// NewHG returns an empty index for keys of type t (Int64 or String; float
// keys are not indexable, matching IQ's HG applicability).
func NewHG(t column.Type) (*HG, error) {
	switch t {
	case column.Int64:
		return &HG{typ: t, intKeys: make(map[int64]*rfrb.Bitmap)}, nil
	case column.String:
		return &HG{typ: t, strKeys: make(map[string]*rfrb.Bitmap)}, nil
	default:
		return nil, fmt.Errorf("index: HG does not support %v keys", t)
	}
}

// Type returns the key type.
func (h *HG) Type() column.Type { return h.typ }

// Add indexes v's values as rows [baseRow, baseRow+len).
func (h *HG) Add(v *column.Vector, baseRow uint64) error {
	if v.Typ != h.typ {
		return fmt.Errorf("index: adding %v values to an HG over %v", v.Typ, h.typ)
	}
	h.dirty = true
	switch h.typ {
	case column.Int64:
		for i, x := range v.I64 {
			b := h.intKeys[x]
			if b == nil {
				b = &rfrb.Bitmap{}
				h.intKeys[x] = b
			}
			b.AddKey(baseRow + uint64(i))
		}
	default:
		for i, s := range v.Str {
			b := h.strKeys[s]
			if b == nil {
				b = &rfrb.Bitmap{}
				h.strKeys[s] = b
			}
			b.AddKey(baseRow + uint64(i))
		}
	}
	return nil
}

// Cardinality returns the number of distinct keys.
func (h *HG) Cardinality() int {
	if h.typ == column.Int64 {
		return len(h.intKeys)
	}
	return len(h.strKeys)
}

func (h *HG) ensureSorted() {
	if !h.dirty {
		return
	}
	h.dirty = false
	if h.typ == column.Int64 {
		h.sortedI = h.sortedI[:0]
		for k := range h.intKeys {
			h.sortedI = append(h.sortedI, k)
		}
		sort.Slice(h.sortedI, func(i, j int) bool { return h.sortedI[i] < h.sortedI[j] })
		return
	}
	h.sortedS = h.sortedS[:0]
	for k := range h.strKeys {
		h.sortedS = append(h.sortedS, k)
	}
	sort.Strings(h.sortedS)
}

// LookupInt returns the rows holding exactly key, or nil.
func (h *HG) LookupInt(key int64) *rfrb.Bitmap {
	if h.typ != column.Int64 {
		return nil
	}
	return h.intKeys[key]
}

// LookupStr returns the rows holding exactly key, or nil.
func (h *HG) LookupStr(key string) *rfrb.Bitmap {
	if h.typ != column.String {
		return nil
	}
	return h.strKeys[key]
}

// LookupRangeInt unions the postings of all keys in [lo, hi].
func (h *HG) LookupRangeInt(lo, hi int64) *rfrb.Bitmap {
	out := &rfrb.Bitmap{}
	if h.typ != column.Int64 {
		return out
	}
	h.ensureSorted()
	i := sort.Search(len(h.sortedI), func(i int) bool { return h.sortedI[i] >= lo })
	for ; i < len(h.sortedI) && h.sortedI[i] <= hi; i++ {
		out.Union(h.intKeys[h.sortedI[i]])
	}
	return out
}

// LookupRangeStr unions the postings of all keys in [lo, hi].
func (h *HG) LookupRangeStr(lo, hi string) *rfrb.Bitmap {
	out := &rfrb.Bitmap{}
	if h.typ != column.String {
		return out
	}
	h.ensureSorted()
	i := sort.Search(len(h.sortedS), func(i int) bool { return h.sortedS[i] >= lo })
	for ; i < len(h.sortedS) && h.sortedS[i] <= hi; i++ {
		out.Union(h.strKeys[h.sortedS[i]])
	}
	return out
}

// Marshal serializes the index: key count, then sorted (key, postings).
func (h *HG) Marshal() []byte {
	h.ensureSorted()
	buf := []byte{byte(h.typ)}
	if h.typ == column.Int64 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.sortedI)))
		for _, k := range h.sortedI {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
			img := h.intKeys[k].Marshal()
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(img)))
			buf = append(buf, img...)
		}
		return buf
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.sortedS)))
	for _, k := range h.sortedS {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		img := h.strKeys[k].Marshal()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(img)))
		buf = append(buf, img...)
	}
	return buf
}

// Unmarshal restores an index from Marshal output.
func Unmarshal(data []byte) (*HG, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("index: image too short (%d bytes)", len(data))
	}
	h, err := NewHG(column.Type(data[0]))
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(data[1:]))
	off := 5
	for i := 0; i < n; i++ {
		var intKey int64
		var strKey string
		if h.typ == column.Int64 {
			if off+12 > len(data) {
				return nil, fmt.Errorf("index: truncated at key %d", i)
			}
			intKey = int64(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		} else {
			if off+2 > len(data) {
				return nil, fmt.Errorf("index: truncated at key %d", i)
			}
			l := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if off+l+4 > len(data) {
				return nil, fmt.Errorf("index: truncated at key %d", i)
			}
			strKey = string(data[off : off+l])
			off += l
		}
		bl := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+bl > len(data) {
			return nil, fmt.Errorf("index: postings for key %d overflow image", i)
		}
		b, err := rfrb.Unmarshal(data[off : off+bl])
		if err != nil {
			return nil, fmt.Errorf("index: postings for key %d: %w", i, err)
		}
		off += bl
		if h.typ == column.Int64 {
			h.intKeys[intKey] = b
		} else {
			h.strKeys[strKey] = b
		}
	}
	h.dirty = true
	return h, nil
}
