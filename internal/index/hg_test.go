package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudiq/internal/column"
)

func TestIntLookup(t *testing.T) {
	h, err := NewHG(column.Int64)
	if err != nil {
		t.Fatal(err)
	}
	v := &column.Vector{Typ: column.Int64, I64: []int64{5, 3, 5, 7, 3, 5}}
	if err := h.Add(v, 0); err != nil {
		t.Fatal(err)
	}
	if got := h.LookupInt(5); got == nil || got.Count() != 3 || !got.Contains(0) || !got.Contains(2) || !got.Contains(5) {
		t.Fatalf("LookupInt(5) = %v", got)
	}
	if got := h.LookupInt(99); got != nil {
		t.Fatalf("LookupInt(99) = %v", got)
	}
	if h.Cardinality() != 3 {
		t.Fatalf("Cardinality = %d", h.Cardinality())
	}
}

func TestAddWithBaseRowAcrossSegments(t *testing.T) {
	h, _ := NewHG(column.Int64)
	seg1 := &column.Vector{Typ: column.Int64, I64: []int64{1, 2}}
	seg2 := &column.Vector{Typ: column.Int64, I64: []int64{2, 1}}
	_ = h.Add(seg1, 0)
	_ = h.Add(seg2, 100)
	got := h.LookupInt(2)
	if got.Count() != 2 || !got.Contains(1) || !got.Contains(100) {
		t.Fatalf("LookupInt(2) = %v", got)
	}
}

func TestRangeLookupInt(t *testing.T) {
	h, _ := NewHG(column.Int64)
	_ = h.Add(&column.Vector{Typ: column.Int64, I64: []int64{10, 20, 30, 40}}, 0)
	got := h.LookupRangeInt(15, 35)
	if got.Count() != 2 || !got.Contains(1) || !got.Contains(2) {
		t.Fatalf("range = %v", got)
	}
	if h.LookupRangeInt(100, 200).Count() != 0 {
		t.Fatal("empty range matched")
	}
	// Adding after a range lookup must refresh the sorted directory.
	_ = h.Add(&column.Vector{Typ: column.Int64, I64: []int64{25}}, 10)
	if got := h.LookupRangeInt(15, 35); got.Count() != 3 {
		t.Fatalf("post-add range = %v", got)
	}
}

func TestStringLookupAndRange(t *testing.T) {
	h, err := NewHG(column.String)
	if err != nil {
		t.Fatal(err)
	}
	v := &column.Vector{Typ: column.String, Str: []string{"ASIA", "EUROPE", "ASIA", "AFRICA"}}
	_ = h.Add(v, 0)
	if got := h.LookupStr("ASIA"); got.Count() != 2 {
		t.Fatalf("LookupStr = %v", got)
	}
	if got := h.LookupRangeStr("AFRICA", "ASIA"); got.Count() != 3 {
		t.Fatalf("range = %v", got)
	}
	if h.LookupInt(1) != nil {
		t.Fatal("int lookup on string index returned postings")
	}
}

func TestFloatKeysRejected(t *testing.T) {
	if _, err := NewHG(column.Float64); err == nil {
		t.Fatal("float HG accepted")
	}
}

func TestTypeMismatchAdd(t *testing.T) {
	h, _ := NewHG(column.Int64)
	if err := h.Add(&column.Vector{Typ: column.String, Str: []string{"x"}}, 0); err == nil {
		t.Fatal("mismatched Add accepted")
	}
}

func TestMarshalRoundTripInt(t *testing.T) {
	h, _ := NewHG(column.Int64)
	rnd := rand.New(rand.NewSource(1))
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(rnd.Intn(50))
	}
	_ = h.Add(&column.Vector{Typ: column.Int64, I64: vals}, 0)
	got, err := Unmarshal(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != h.Cardinality() {
		t.Fatalf("cardinality %d vs %d", got.Cardinality(), h.Cardinality())
	}
	for k := int64(0); k < 50; k++ {
		a, b := h.LookupInt(k), got.LookupInt(k)
		if (a == nil) != (b == nil) {
			t.Fatalf("key %d presence differs", k)
		}
		if a != nil && a.String() != b.String() {
			t.Fatalf("key %d postings differ: %v vs %v", k, a, b)
		}
	}
}

func TestMarshalRoundTripString(t *testing.T) {
	h, _ := NewHG(column.String)
	_ = h.Add(&column.Vector{Typ: column.String, Str: []string{"b", "a", "b", "c"}}, 7)
	got, err := Unmarshal(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.LookupStr("b").String() != h.LookupStr("b").String() {
		t.Fatal("postings differ after round trip")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte{0}); err == nil {
		t.Fatal("short image accepted")
	}
	if _, err := Unmarshal([]byte{9, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad type accepted")
	}
	h, _ := NewHG(column.Int64)
	_ = h.Add(&column.Vector{Typ: column.Int64, I64: []int64{1, 2, 3}}, 0)
	img := h.Marshal()
	if _, err := Unmarshal(img[:len(img)-4]); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestPropertyLookupMatchesScan(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r % 16)
		}
		h, _ := NewHG(column.Int64)
		if err := h.Add(&column.Vector{Typ: column.Int64, I64: vals}, 0); err != nil {
			return false
		}
		for key := int64(0); key < 16; key++ {
			b := h.LookupInt(key)
			for row, v := range vals {
				inIndex := b != nil && b.Contains(uint64(row))
				if inIndex != (v == key) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
