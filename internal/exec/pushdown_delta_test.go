package exec

// Delta-dirty pushdown refusal pins, the ingest-lane sibling of the
// dirty-page refusal in buffer.Object.Select: a table with live delta rows
// must never push work store-side, because the store only holds the columnar
// main — a pushed result would silently miss the trickle-inserted rows. The
// scan must instead fall back to merged local reads, and the merged result
// must be byte-identical to a table that already absorbed the same rows into
// segments.

import (
	"testing"

	"cloudiq/internal/mt"
	"cloudiq/internal/objstore"
	"cloudiq/internal/table"
)

// staticDelta is a fixed-batch table.DeltaView for tests.
type staticDelta struct{ b *table.Batch }

func (d staticDelta) DeltaBatch() *table.Batch { return d.b }

func TestPushdownDeltaDirtyRefusal(t *testing.T) {
	const mainRows, deltaRows, segRows = 400, 37, 64
	const seed = 0x9D17

	// Reference: one table that already holds main+delta rows as segments.
	refStore := objstore.NewMem(objstore.Config{})
	refTbl, _ := pushdownTable(t, refStore, mainRows, segRows, seed)
	extra, _ := diffBatch(mt.New(seed+1), deltaRows)
	if err := refTbl.Append(ctxb(), extra); err != nil {
		t.Fatal(err)
	}
	if _, err := refTbl.Commit(ctxb()); err != nil {
		t.Fatal(err)
	}

	// Under test: the same main rows as segments, the extra rows attached
	// as a delta view.
	store := objstore.NewMem(objstore.Config{})
	tbl, _ := pushdownTable(t, store, mainRows, segRows, seed)
	tbl.AttachDelta(staticDelta{b: extra})

	preds := []Expr{
		nil,
		Ge(Col("a"), ConstI(0)),
		And(Ge(Col("a"), ConstI(-5)), Lt(Col("b"), ConstI(30))),
	}
	m := store.Metrics()
	for i, pred := range preds {
		want := collectScan(t, refTbl, ScanOptions{Filter: pred})
		for _, mode := range []PushdownMode{PushdownForce, PushdownAuto} {
			got := collectScan(t, tbl, ScanOptions{Filter: pred, Pushdown: mode})
			if !sameBatch(want, got) {
				t.Fatalf("pred %d mode %d: delta-merged scan diverged (%d vs %d rows)",
					i, mode, got.Rows(), want.Rows())
			}
		}
	}
	if n := m.Selects(); n != 0 {
		t.Fatalf("delta-dirty scan reached the store's compute endpoint %d times; it must refuse pushdown", n)
	}

	// Aggregates take the same refusal: merged local fold, no selects.
	aggs := []Agg{{Func: Count, As: "n"}, {Func: Sum, Expr: Col("a"), As: "sa"}}
	want, err := ScanAgg(ctxb(), refTbl, diffCols, ScanOptions{Filter: Ge(Col("a"), ConstI(-2)), Prefetch: -1}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScanAgg(ctxb(), tbl, diffCols, ScanOptions{Filter: Ge(Col("a"), ConstI(-2)), Prefetch: -1, Pushdown: PushdownForce}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if !sameBatch(want, got) {
		t.Fatalf("delta-merged ScanAgg diverged")
	}
	if n := m.Selects(); n != 0 {
		t.Fatalf("delta-dirty ScanAgg reached the compute endpoint %d times", n)
	}

	// Detaching the view re-enables pushdown: the refusal is conditional on
	// live delta rows, not a blanket off-switch.
	tbl.AttachDelta(nil)
	_ = collectScan(t, tbl, ScanOptions{Filter: Ge(Col("a"), ConstI(0)), Pushdown: PushdownForce})
	if m.Selects() == 0 {
		t.Fatal("pushdown stayed refused after the delta view was detached")
	}
}
