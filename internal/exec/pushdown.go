package exec

// Pushdown: lowering scan filters and ungrouped aggregates into the object
// store's compute endpoint (objstore.Selector). The reader keeps full
// authority over semantics — the store plan mini-language replicates exec's
// evaluator exactly, and every pushdown failure (store without the
// capability, unsupported plan, injected fault, dirty page in cache)
// degrades to the plain ReadSegment path, so a scan with pushdown enabled
// returns the same rows as one without.

import (
	"context"
	"fmt"
	"sort"

	"cloudiq/internal/column"
	"cloudiq/internal/objstore"
	"cloudiq/internal/table"
	"cloudiq/internal/trace"
)

// PushdownMode selects whether a scan may evaluate its filter (and partial
// aggregates) inside the object store instead of shipping whole segments to
// the reader.
type PushdownMode uint8

const (
	// PushdownOff never uses the store's compute endpoint.
	PushdownOff PushdownMode = iota
	// PushdownAuto decides per segment: push when the zone-map selectivity
	// estimate says the filter discards at least half the segment's rows —
	// an unselective pushdown returns nearly the whole segment and just
	// adds the compute charge.
	PushdownAuto
	// PushdownForce pushes every segment whose plan translates, regardless
	// of estimated selectivity. Differential harnesses use it to maximize
	// pushdown coverage.
	PushdownForce
)

// autoPushThreshold is the estimated-selectivity ceiling for PushdownAuto.
const autoPushThreshold = 0.5

var arithOpNames = map[arithOp]string{opAdd: "add", opSub: "sub", opMul: "mul", opDiv: "div"}
var cmpOpNames = map[cmpOp]string{opEq: "eq", opNe: "ne", opLt: "lt", opLe: "le", opGt: "gt", opGe: "ge"}

// translateExpr lowers a reader expression into the store's plan
// mini-language. The second result is false for nodes the store does not
// evaluate (CASE, SUBSTRING, YEAR) — callers then stay on plain reads.
func translateExpr(e Expr) (*objstore.PlanExpr, bool) {
	switch x := e.(type) {
	case colExpr:
		return &objstore.PlanExpr{Op: "col", Col: string(x)}, true
	case constI:
		return &objstore.PlanExpr{Op: "int", I: int64(x)}, true
	case constF:
		return &objstore.PlanExpr{Op: "float", F: float64(x)}, true
	case constS:
		return &objstore.PlanExpr{Op: "str", S: string(x)}, true
	case arithExpr:
		a, ok := translateExpr(x.a)
		if !ok {
			return nil, false
		}
		b, ok := translateExpr(x.b)
		if !ok {
			return nil, false
		}
		return &objstore.PlanExpr{Op: arithOpNames[x.op], Args: []*objstore.PlanExpr{a, b}}, true
	case cmpExpr:
		a, ok := translateExpr(x.a)
		if !ok {
			return nil, false
		}
		b, ok := translateExpr(x.b)
		if !ok {
			return nil, false
		}
		return &objstore.PlanExpr{Op: cmpOpNames[x.op], Args: []*objstore.PlanExpr{a, b}}, true
	case boolExpr:
		a, ok := translateExpr(x.a)
		if !ok {
			return nil, false
		}
		b, ok := translateExpr(x.b)
		if !ok {
			return nil, false
		}
		op := "or"
		if x.and {
			op = "and"
		}
		return &objstore.PlanExpr{Op: op, Args: []*objstore.PlanExpr{a, b}}, true
	case notExpr:
		a, ok := translateExpr(x.a)
		if !ok {
			return nil, false
		}
		return &objstore.PlanExpr{Op: "not", Args: []*objstore.PlanExpr{a}}, true
	case likeExpr:
		a, ok := translateExpr(x.a)
		if !ok {
			return nil, false
		}
		return &objstore.PlanExpr{Op: "like", Pattern: x.pattern, Neg: x.neg, Args: []*objstore.PlanExpr{a}}, true
	case inExpr:
		a, ok := translateExpr(x.a)
		if !ok {
			return nil, false
		}
		set := make([]string, 0, len(x.set))
		for s := range x.set {
			set = append(set, s)
		}
		sort.Strings(set)
		return &objstore.PlanExpr{Op: "in", Set: set, Args: []*objstore.PlanExpr{a}}, true
	default:
		return nil, false
	}
}

// --- selectivity estimation -----------------------------------------------

// estimateSelectivity guesses the fraction of a segment's rows a filter
// keeps, from the segment's zone maps under a uniform-distribution
// assumption. It only needs to be good enough to separate "returns a sliver"
// from "returns most of the segment"; anything it cannot model answers 0.5.
func estimateSelectivity(e Expr, sch table.Schema, zones []column.ZoneMap) float64 {
	switch x := e.(type) {
	case cmpExpr:
		return cmpSelectivity(x, sch, zones)
	case boolExpr:
		pa := estimateSelectivity(x.a, sch, zones)
		pb := estimateSelectivity(x.b, sch, zones)
		if x.and {
			return pa * pb
		}
		return clamp01(pa + pb - pa*pb)
	case notExpr:
		return clamp01(1 - estimateSelectivity(x.a, sch, zones))
	case likeExpr:
		if x.neg {
			return 0.9
		}
		return 0.1
	case inExpr:
		return clamp01(0.1 * float64(len(x.set)))
	default:
		return 0.5
	}
}

func exprConst(e Expr) (float64, bool) {
	switch x := e.(type) {
	case constI:
		return float64(int64(x)), true
	case constF:
		return float64(x), true
	}
	return 0, false
}

func flipCmp(op cmpOp) cmpOp {
	switch op {
	case opLt:
		return opGt
	case opLe:
		return opGe
	case opGt:
		return opLt
	case opGe:
		return opLe
	}
	return op // eq / ne are symmetric
}

func cmpSelectivity(e cmpExpr, sch table.Schema, zones []column.ZoneMap) float64 {
	op := e.op
	col, okCol := e.a.(colExpr)
	c, okConst := exprConst(e.b)
	if !okCol || !okConst {
		// Try the mirrored form: const OP col.
		if col2, ok := e.b.(colExpr); ok {
			if c2, ok2 := exprConst(e.a); ok2 {
				col, c, op = col2, c2, flipCmp(e.op)
				okCol, okConst = true, true
			}
		}
	}
	if !okCol || !okConst {
		return 0.5
	}
	ci := sch.ColIndex(string(col))
	if ci < 0 || ci >= len(zones) {
		return 0.5
	}
	return rangeSelectivity(op, c, zones[ci])
}

// rangeSelectivity treats the zone-map range as a uniform distribution:
// integers as max-min+1 equally likely points, floats as a continuum.
func rangeSelectivity(op cmpOp, c float64, z column.ZoneMap) float64 {
	var lo, hi float64
	discrete := false
	switch z.Typ {
	case column.Int64:
		lo, hi = float64(z.MinI64), float64(z.MaxI64)
		discrete = true
	case column.Float64:
		lo, hi = z.MinF64, z.MaxF64
	default:
		return 0.5 // string zone maps carry no usable density
	}
	if hi < lo {
		return 0 // empty segment: inverted bounds
	}
	width := hi - lo
	if discrete {
		width++
	}
	if width <= 0 {
		// Single-point float range: the comparison is decided outright.
		if cmpHoldsFloat(op, lo, c) {
			return 1
		}
		return 0
	}
	point := 0.05 // equality against a continuum
	if discrete {
		point = 1 / width
	}
	// below(incl) estimates the fraction satisfying "< c" (or "<= c").
	below := func(incl bool) float64 {
		f := (c - lo) / width
		if discrete && incl {
			f = (c - lo + 1) / width
		}
		return clamp01(f)
	}
	switch op {
	case opEq:
		return clamp01(point)
	case opNe:
		return clamp01(1 - point)
	case opLt:
		return below(false)
	case opLe:
		return below(true)
	case opGt:
		return clamp01(1 - below(true))
	default: // opGe
		return clamp01(1 - below(false))
	}
}

func cmpHoldsFloat(op cmpOp, a, b float64) bool {
	c := 0
	if a < b {
		c = -1
	} else if a > b {
		c = 1
	}
	return cmpBool(op, c)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// --- scan integration ------------------------------------------------------

// planPushdown decides, per surviving segment, whether the scan will use the
// store's compute endpoint. It runs once at Scan time; a per-segment false
// (or a nil push slice) means plain reads.
func (s *scanSource) planPushdown() {
	if s.opts.Pushdown == PushdownOff || len(s.segs) == 0 {
		return
	}
	if s.tbl.Delta() != nil {
		// Delta-dirty table: the store only holds the columnar main, so a
		// pushed result would be stale the way a dirty cached page is —
		// stay on plain local reads and merge the delta rows reader-side.
		return
	}
	if s.opts.Filter != nil {
		pf, ok := translateExpr(s.opts.Filter)
		if !ok {
			return // untranslatable filter: plain reads everywhere
		}
		s.planFilter = pf
	} else if s.opts.Pushdown != PushdownForce {
		return // pushing an unfiltered scan returns every byte anyway
	}
	s.push = make([]bool, len(s.segs))
	sch := s.tbl.Schema()
	for i, seg := range s.segs {
		if s.opts.Pushdown == PushdownForce {
			s.push[i] = true
			continue
		}
		sel := estimateSelectivity(s.opts.Filter, sch, s.tbl.Seg(seg).Zones)
		s.push[i] = sel <= autoPushThreshold
	}
}

// pushSegment reads one segment through the store's compute endpoint: the
// filter runs store-side and only qualifying rows cross the network, already
// filtered. Any error sends the caller to the plain ReadSegment path.
func (s *scanSource) pushSegment(ctx context.Context, seg int) (*table.Batch, error) {
	res, err := s.tbl.SelectSegment(ctx, seg, s.cols, objstore.SelectPlan{
		Filter:  s.planFilter,
		Project: s.colNames,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Cols) != len(s.cols) {
		return nil, fmt.Errorf("exec: pushdown returned %d columns, want %d", len(res.Cols), len(s.cols))
	}
	b := &table.Batch{Vecs: make([]*column.Vector, len(s.cols))}
	for i, c := range s.cols {
		b.Schema.Cols = append(b.Schema.Cols, s.tbl.Schema().Cols[c])
		v, err := column.DecodeSegment(res.Cols[i])
		if err != nil {
			return nil, fmt.Errorf("exec: decode pushdown column %q: %w", s.colNames[i], err)
		}
		b.Vecs[i] = v
	}
	return b, nil
}

// emptyBatch is the typed zero-row result of a scan whose every segment was
// pruned: downstream operators still need the schema to type their output,
// exactly as a filter that removed every row would leave behind.
func (s *scanSource) emptyBatch() *table.Batch {
	b := &table.Batch{Vecs: make([]*column.Vector, len(s.cols))}
	for i, c := range s.cols {
		def := s.tbl.Schema().Cols[c]
		b.Schema.Cols = append(b.Schema.Cols, def)
		b.Vecs[i] = column.NewVector(def.Typ)
	}
	return b
}

// --- aggregate pushdown ----------------------------------------------------

// aggFuncNames maps the pushable aggregate functions to their plan names.
// Avg and CountDistinct stay reader-side.
var aggFuncNames = map[AggFunc]string{Count: "count", Sum: "sum", Min: "min", Max: "max"}

// translateAggPlan lowers the filter and aggregate list into a store plan,
// or reports that some part is not pushable.
func translateAggPlan(opts ScanOptions, aggs []Agg) (objstore.SelectPlan, bool) {
	var plan objstore.SelectPlan
	if opts.Filter != nil {
		pf, ok := translateExpr(opts.Filter)
		if !ok {
			return plan, false
		}
		plan.Filter = pf
	}
	if len(aggs) == 0 {
		return plan, false
	}
	for _, a := range aggs {
		name, ok := aggFuncNames[a.Func]
		if !ok {
			return plan, false
		}
		pa := objstore.PlanAgg{Func: name}
		if a.Expr != nil {
			pe, ok := translateExpr(a.Expr)
			if !ok {
				return plan, false
			}
			pa.Expr = pe
		} else if a.Func != Count {
			return plan, false
		}
		plan.Aggs = append(plan.Aggs, pa)
	}
	return plan, true
}

// mergeAggState folds a store-side partial state into the reader's
// accumulator with the same arithmetic updateAgg applies row by row, so
// counts, integer sums and min/max merge exactly. (Float sums regroup the
// additions per segment, as any partitioned sum does.)
func mergeAggState(st *aggState, o objstore.AggState) {
	if o.Count == 0 && !o.Seen {
		return
	}
	st.typ = o.Typ
	st.count += o.Count
	st.sumI += o.SumI
	st.sumF += o.SumF
	if o.Seen {
		switch o.Typ {
		case column.Int64:
			if !st.seen || o.MinI < st.minI {
				st.minI = o.MinI
			}
			if !st.seen || o.MaxI > st.maxI {
				st.maxI = o.MaxI
			}
		case column.Float64:
			if !st.seen || o.MinF < st.minF {
				st.minF = o.MinF
			}
			if !st.seen || o.MaxF > st.maxF {
				st.maxF = o.MaxF
			}
		default:
			if !st.seen || o.MinS < st.minS {
				st.minS = o.MinS
			}
			if !st.seen || o.MaxS > st.maxS {
				st.maxS = o.MaxS
			}
		}
		st.seen = true
	}
}

// foldBatch accumulates a reader-side batch into the aggregate states,
// mirroring HashAgg's per-batch input evaluation.
func foldBatch(states []*aggState, aggs []Agg, b *table.Batch) error {
	inputs := make([]*column.Vector, len(aggs))
	for i, a := range aggs {
		if a.Expr == nil {
			continue
		}
		v, err := a.Expr.Eval(b)
		if err != nil {
			return err
		}
		inputs[i] = v
	}
	for r := 0; r < b.Rows(); r++ {
		for i, a := range aggs {
			updateAgg(states[i], a, inputs[i], r)
		}
	}
	return nil
}

// ScanAgg computes ungrouped aggregates over a table scan, pushing the
// filter and partial aggregation into the object store when opts.Pushdown
// allows and every aggregate is pushable (Count, Sum, Min, Max over
// translatable expressions). Each partial state that comes back is ~64 bytes
// regardless of how many rows qualified — the extreme case of the
// scanned/returned asymmetry pushdown exists for — so any allowed aggregate
// push is taken without a selectivity estimate. Segments whose pushdown
// fails fall back to plain reads; anything unpushable falls back entirely to
// HashAgg over Scan. The result is one row, matching
// HashAgg(Scan(...), nil, aggs).
func ScanAgg(ctx context.Context, t *table.Table, cols []string, opts ScanOptions, aggs []Agg) (*table.Batch, error) {
	plan, pushable := translateAggPlan(opts, aggs)
	// A delta-dirty table refuses aggregate pushdown outright: the store
	// cannot see the delta rows, so its partial states would be stale. The
	// Scan fallback below merges them reader-side.
	if opts.Pushdown == PushdownOff || !pushable || t.Delta() != nil {
		src, err := Scan(t, cols, opts)
		if err != nil {
			return nil, err
		}
		return HashAgg(ctx, src, nil, aggs)
	}
	// Reuse Scan's column resolution and zone pruning, but drive the
	// segments ourselves.
	src, err := Scan(t, cols, opts)
	if err != nil {
		return nil, err
	}
	sc := src.(*scanSource)
	states := make([]*aggState, len(aggs))
	for i := range states {
		states[i] = &aggState{}
	}
	for _, seg := range sc.segs {
		if err := YieldPoint(ctx); err != nil {
			return nil, err
		}
		rctx, rsp := trace.Start(ctx, "scan.agg",
			trace.String("table", t.Name()), trace.Int("seg", int64(seg)))
		res, perr := t.SelectSegment(rctx, seg, sc.cols, plan)
		if perr == nil && len(res.Aggs) == len(aggs) {
			rsp.AddInt("pushdown", 1)
			rsp.AddInt("rows", int64(res.Rows))
			rsp.End()
			for i := range states {
				mergeAggState(states[i], res.Aggs[i])
			}
			continue
		}
		if perr != nil {
			rsp.SetAttr("fallback", perr.Error())
		}
		b, err := t.ReadSegment(rctx, seg, sc.cols)
		if err != nil {
			rsp.SetAttr("err", err.Error())
			rsp.End()
			return nil, err
		}
		rsp.End()
		if opts.Filter != nil {
			b, err = FilterBatch(b, opts.Filter)
			if err != nil {
				return nil, err
			}
		}
		if err := foldBatch(states, aggs, b); err != nil {
			return nil, err
		}
	}
	// Emit exactly as HashAgg's global group would.
	groups := map[string]*group{"": {states: states}}
	order := []string{""}
	out := &table.Batch{}
	for i, a := range aggs {
		typ := aggOutputType(a, groups, order, i)
		out.Schema.Cols = append(out.Schema.Cols, table.ColumnDef{Name: a.As, Typ: typ})
		out.Vecs = append(out.Vecs, column.NewVector(typ))
	}
	for i, a := range aggs {
		emitAgg(out.Vecs[i], states[i], a)
	}
	return out, nil
}
