package exec

// OCM coherence pins for pushdown. A select is served by the store's compute
// endpoint from the stored page images: no page bytes may enter the Object
// Cache Manager on its behalf (select results are derived, filtered data —
// installing them under page keys would poison later full reads), and a later
// full read of the same segment must hit the normal read-through path exactly
// once per page, with no stale bytes and no double charge.

import (
	"context"
	"testing"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/buffer"
	"cloudiq/internal/core"
	"cloudiq/internal/keygen"
	"cloudiq/internal/mt"
	"cloudiq/internal/objstore"
	"cloudiq/internal/ocm"
	"cloudiq/internal/rfrb"
	"cloudiq/internal/table"
)

// pushdownOCMTable is pushdownTable with an Object Cache Manager between the
// dbspace and the store. The tiny pool keeps the buffer cache cold, so full
// reads actually consult the OCM.
func pushdownOCMTable(t *testing.T, store *objstore.MemStore, rows, segRows int) (*table.Table, *ocm.Cache) {
	t.Helper()
	gen := keygen.NewGenerator(nil)
	client := keygen.NewClient(func(ctx context.Context, n uint64) (rfrb.Range, error) {
		return gen.Allocate(ctx, "n", n)
	})
	dev := blockdev.NewMem(blockdev.Config{Capacity: 1 << 22})
	cache, err := ocm.New(ocm.Config{Device: dev, Store: store, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cache.Close() })
	ds := core.NewCloud(core.CloudConfig{Name: "user", Store: store, Keys: client, Cache: cache})
	pool := buffer.NewPool(buffer.Config{Capacity: 4096})
	bm, err := core.NewBlockmap(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	obj := pool.OpenObject(ds, bm, core.LockedSink(core.BitmapSink{RB: &rfrb.Bitmap{}, RF: &rfrb.Bitmap{}}), nil)
	tbl, err := table.Create("t", obj, table.Schema{Cols: []table.ColumnDef{
		intCol("a"), intCol("b"), fltCol("f"), fltCol("g"), strCol("s"), strCol("t"),
	}}, table.Options{SegRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	rng := mt.New(0xc0Fe)
	b, _ := diffBatch(rng, rows)
	if err := tbl.Append(ctxb(), b); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Commit(ctxb()); err != nil {
		t.Fatal(err)
	}
	cache.Quiesce()
	return tbl, cache
}

// TestPushdownOCMCoherence is the pinned coherence test: a forced-pushdown
// scan must leave the OCM completely untouched — no entries installed, no
// lookups, no page gets — and the subsequent full read must return rows
// byte-identical to the pushed result while charging the store once per
// cache miss (misses and store gets move in lockstep; everything else is an
// OCM hit).
func TestPushdownOCMCoherence(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	tbl, cache := pushdownOCMTable(t, store, 400, 64)
	pred := func() Expr { return Ge(Col("a"), ConstI(0)) }

	m := store.Metrics()
	preLen := cache.Len()
	preStats := cache.Stats()
	preGets, preSelects := m.Gets(), m.Selects()

	pushed := collectScan(t, tbl, ScanOptions{Filter: pred(), Pushdown: PushdownForce})

	mid := cache.Stats()
	if m.Selects() == preSelects {
		t.Fatal("forced pushdown never reached the store's compute endpoint")
	}
	if got := cache.Len(); got != preLen {
		t.Errorf("pushdown changed OCM entry count: %d -> %d", preLen, got)
	}
	if mid.Hits != preStats.Hits || mid.Misses != preStats.Misses {
		t.Errorf("pushdown consulted the OCM: hits %d->%d misses %d->%d",
			preStats.Hits, mid.Hits, preStats.Misses, mid.Misses)
	}
	if got := m.Gets(); got != preGets {
		t.Errorf("pushdown issued %d page gets; selects must bypass page reads entirely", got-preGets)
	}

	plain := collectScan(t, tbl, ScanOptions{Filter: pred()})
	if !sameBatch(plain, pushed) {
		t.Fatalf("full read after pushdown diverged (%d vs %d rows)", plain.Rows(), pushed.Rows())
	}

	post := cache.Stats()
	lookups := (post.Hits - mid.Hits) + (post.Misses - mid.Misses)
	if lookups == 0 {
		t.Fatal("full read never consulted the OCM; the coherence path went unexercised")
	}
	if getsDelta, missDelta := m.Gets()-preGets, post.Misses-mid.Misses; getsDelta != missDelta {
		t.Errorf("store gets (%d) != OCM misses (%d): pages were double-charged or served stale",
			getsDelta, missDelta)
	}
}
