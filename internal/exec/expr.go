// Package exec is the vectorized query execution layer: expressions
// evaluated over columnar batches, and the physical operators — zone-map-
// pruned prefetching scans, hash joins (inner/left/semi/anti), hash
// aggregation with DISTINCT support, sort and limit — that the TPC-H query
// plans compose. It is deliberately a physical algebra: plans are built in
// Go, as the reproduction's stand-in for SAP IQ's optimizer output.
package exec

import (
	"fmt"
	"strings"

	"cloudiq/internal/column"
	"cloudiq/internal/table"
)

// Expr evaluates to one vector over a batch. Boolean expressions yield
// Int64 vectors of 0/1.
type Expr interface {
	Eval(b *table.Batch) (*column.Vector, error)
}

// Col references a column of the input batch by name.
func Col(name string) Expr { return colExpr(name) }

type colExpr string

func (c colExpr) Eval(b *table.Batch) (*column.Vector, error) {
	i := b.Schema.ColIndex(string(c))
	if i < 0 {
		return nil, fmt.Errorf("exec: no column %q in batch", string(c))
	}
	return b.Vecs[i], nil
}

// ConstI is an int64 literal. Dates are int64 days, so date literals use
// ConstI(column.DateToDays(...)).
func ConstI(v int64) Expr { return constI(v) }

// ConstF is a float64 literal.
func ConstF(v float64) Expr { return constF(v) }

// ConstS is a string literal.
func ConstS(v string) Expr { return constS(v) }

type constI int64
type constF float64
type constS string

func broadcastLen(b *table.Batch) int { return b.Rows() }

func (c constI) Eval(b *table.Batch) (*column.Vector, error) {
	n := broadcastLen(b)
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(c)
	}
	return &column.Vector{Typ: column.Int64, I64: v}, nil
}

func (c constF) Eval(b *table.Batch) (*column.Vector, error) {
	n := broadcastLen(b)
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(c)
	}
	return &column.Vector{Typ: column.Float64, F64: v}, nil
}

func (c constS) Eval(b *table.Batch) (*column.Vector, error) {
	n := broadcastLen(b)
	v := make([]string, n)
	for i := range v {
		v[i] = string(c)
	}
	return &column.Vector{Typ: column.String, Str: v}, nil
}

// binary arithmetic -------------------------------------------------------

type arithOp uint8

const (
	opAdd arithOp = iota
	opSub
	opMul
	opDiv
)

type arithExpr struct {
	op   arithOp
	a, b Expr
}

// Add returns a+b with numeric promotion (any float operand makes the
// result float).
func Add(a, b Expr) Expr { return arithExpr{opAdd, a, b} }

// Sub returns a-b.
func Sub(a, b Expr) Expr { return arithExpr{opSub, a, b} }

// Mul returns a*b.
func Mul(a, b Expr) Expr { return arithExpr{opMul, a, b} }

// Div returns a/b (float division).
func Div(a, b Expr) Expr { return arithExpr{opDiv, a, b} }

func (e arithExpr) Eval(b *table.Batch) (*column.Vector, error) {
	av, err := e.a.Eval(b)
	if err != nil {
		return nil, err
	}
	bv, err := e.b.Eval(b)
	if err != nil {
		return nil, err
	}
	if av.Typ == column.String || bv.Typ == column.String {
		return nil, fmt.Errorf("exec: arithmetic on strings")
	}
	if av.Typ == column.Int64 && bv.Typ == column.Int64 && e.op != opDiv {
		out := make([]int64, av.Len())
		for i := range out {
			switch e.op {
			case opAdd:
				out[i] = av.I64[i] + bv.I64[i]
			case opSub:
				out[i] = av.I64[i] - bv.I64[i]
			case opMul:
				out[i] = av.I64[i] * bv.I64[i]
			}
		}
		return &column.Vector{Typ: column.Int64, I64: out}, nil
	}
	af := asFloats(av)
	bf := asFloats(bv)
	out := make([]float64, len(af))
	for i := range out {
		switch e.op {
		case opAdd:
			out[i] = af[i] + bf[i]
		case opSub:
			out[i] = af[i] - bf[i]
		case opMul:
			out[i] = af[i] * bf[i]
		case opDiv:
			out[i] = af[i] / bf[i]
		}
	}
	return &column.Vector{Typ: column.Float64, F64: out}, nil
}

func asFloats(v *column.Vector) []float64 {
	if v.Typ == column.Float64 {
		return v.F64
	}
	out := make([]float64, len(v.I64))
	for i, x := range v.I64 {
		out[i] = float64(x)
	}
	return out
}

// comparisons -------------------------------------------------------------

type cmpOp uint8

const (
	opEq cmpOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
)

type cmpExpr struct {
	op   cmpOp
	a, b Expr
}

// Eq returns a = b as 0/1.
func Eq(a, b Expr) Expr { return cmpExpr{opEq, a, b} }

// Ne returns a <> b.
func Ne(a, b Expr) Expr { return cmpExpr{opNe, a, b} }

// Lt returns a < b.
func Lt(a, b Expr) Expr { return cmpExpr{opLt, a, b} }

// Le returns a <= b.
func Le(a, b Expr) Expr { return cmpExpr{opLe, a, b} }

// Gt returns a > b.
func Gt(a, b Expr) Expr { return cmpExpr{opGt, a, b} }

// Ge returns a >= b.
func Ge(a, b Expr) Expr { return cmpExpr{opGe, a, b} }

func cmpBool(op cmpOp, c int) bool {
	switch op {
	case opEq:
		return c == 0
	case opNe:
		return c != 0
	case opLt:
		return c < 0
	case opLe:
		return c <= 0
	case opGt:
		return c > 0
	default:
		return c >= 0
	}
}

func (e cmpExpr) Eval(b *table.Batch) (*column.Vector, error) {
	av, err := e.a.Eval(b)
	if err != nil {
		return nil, err
	}
	bv, err := e.b.Eval(b)
	if err != nil {
		return nil, err
	}
	n := av.Len()
	out := make([]int64, n)
	switch {
	case av.Typ == column.String && bv.Typ == column.String:
		for i := 0; i < n; i++ {
			if cmpBool(e.op, strings.Compare(av.Str[i], bv.Str[i])) {
				out[i] = 1
			}
		}
	case av.Typ == column.Int64 && bv.Typ == column.Int64:
		for i := 0; i < n; i++ {
			c := 0
			if av.I64[i] < bv.I64[i] {
				c = -1
			} else if av.I64[i] > bv.I64[i] {
				c = 1
			}
			if cmpBool(e.op, c) {
				out[i] = 1
			}
		}
	case av.Typ != column.String && bv.Typ != column.String:
		af, bf := asFloats(av), asFloats(bv)
		for i := 0; i < n; i++ {
			c := 0
			if af[i] < bf[i] {
				c = -1
			} else if af[i] > bf[i] {
				c = 1
			}
			if cmpBool(e.op, c) {
				out[i] = 1
			}
		}
	default:
		return nil, fmt.Errorf("exec: comparing %v with %v", av.Typ, bv.Typ)
	}
	return &column.Vector{Typ: column.Int64, I64: out}, nil
}

// boolean combinators ------------------------------------------------------

type boolExpr struct {
	and  bool
	a, b Expr
}

// And returns a AND b.
func And(a, b Expr) Expr { return boolExpr{true, a, b} }

// Or returns a OR b.
func Or(a, b Expr) Expr { return boolExpr{false, a, b} }

func (e boolExpr) Eval(b *table.Batch) (*column.Vector, error) {
	av, err := e.a.Eval(b)
	if err != nil {
		return nil, err
	}
	bv, err := e.b.Eval(b)
	if err != nil {
		return nil, err
	}
	out := make([]int64, av.Len())
	for i := range out {
		x, y := av.I64[i] != 0, bv.I64[i] != 0
		if (e.and && x && y) || (!e.and && (x || y)) {
			out[i] = 1
		}
	}
	return &column.Vector{Typ: column.Int64, I64: out}, nil
}

// Not negates a boolean expression.
func Not(a Expr) Expr { return notExpr{a} }

type notExpr struct{ a Expr }

func (e notExpr) Eval(b *table.Batch) (*column.Vector, error) {
	av, err := e.a.Eval(b)
	if err != nil {
		return nil, err
	}
	out := make([]int64, av.Len())
	for i, x := range av.I64 {
		if x == 0 {
			out[i] = 1
		}
	}
	return &column.Vector{Typ: column.Int64, I64: out}, nil
}

// string predicates & functions -------------------------------------------

// Like matches a SQL LIKE pattern (only '%' wildcards, as TPC-H uses).
func Like(a Expr, pattern string) Expr { return likeExpr{a, pattern, false} }

// NotLike is the negation of Like.
func NotLike(a Expr, pattern string) Expr { return likeExpr{a, pattern, true} }

type likeExpr struct {
	a       Expr
	pattern string
	neg     bool
}

// matchLike matches s against a '%'-wildcard pattern.
func matchLike(s, pattern string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return s == pattern
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(s, mid)
		if idx < 0 {
			return false
		}
		s = s[idx+len(mid):]
	}
	return strings.HasSuffix(s, last)
}

func (e likeExpr) Eval(b *table.Batch) (*column.Vector, error) {
	av, err := e.a.Eval(b)
	if err != nil {
		return nil, err
	}
	if av.Typ != column.String {
		return nil, fmt.Errorf("exec: LIKE on %v", av.Typ)
	}
	out := make([]int64, av.Len())
	for i, s := range av.Str {
		if matchLike(s, e.pattern) != e.neg {
			out[i] = 1
		}
	}
	return &column.Vector{Typ: column.Int64, I64: out}, nil
}

// InS tests membership in a string list.
func InS(a Expr, vals ...string) Expr {
	set := make(map[string]bool, len(vals))
	for _, v := range vals {
		set[v] = true
	}
	return inExpr{a, set}
}

type inExpr struct {
	a   Expr
	set map[string]bool
}

func (e inExpr) Eval(b *table.Batch) (*column.Vector, error) {
	av, err := e.a.Eval(b)
	if err != nil {
		return nil, err
	}
	if av.Typ != column.String {
		return nil, fmt.Errorf("exec: IN list on %v", av.Typ)
	}
	out := make([]int64, av.Len())
	for i, s := range av.Str {
		if e.set[s] {
			out[i] = 1
		}
	}
	return &column.Vector{Typ: column.Int64, I64: out}, nil
}

// Case returns then where cond is true, otherwise els. then/els must share
// a numeric type.
func Case(cond, then, els Expr) Expr { return caseExpr{cond, then, els} }

type caseExpr struct{ cond, then, els Expr }

func (e caseExpr) Eval(b *table.Batch) (*column.Vector, error) {
	cv, err := e.cond.Eval(b)
	if err != nil {
		return nil, err
	}
	tv, err := e.then.Eval(b)
	if err != nil {
		return nil, err
	}
	ev, err := e.els.Eval(b)
	if err != nil {
		return nil, err
	}
	if tv.Typ == column.Int64 && ev.Typ == column.Int64 {
		out := make([]int64, cv.Len())
		for i := range out {
			if cv.I64[i] != 0 {
				out[i] = tv.I64[i]
			} else {
				out[i] = ev.I64[i]
			}
		}
		return &column.Vector{Typ: column.Int64, I64: out}, nil
	}
	tf, ef := asFloats(tv), asFloats(ev)
	out := make([]float64, cv.Len())
	for i := range out {
		if cv.I64[i] != 0 {
			out[i] = tf[i]
		} else {
			out[i] = ef[i]
		}
	}
	return &column.Vector{Typ: column.Float64, F64: out}, nil
}

// Substr returns the 1-based substring of length n.
func Substr(a Expr, start, n int) Expr { return substrExpr{a, start, n} }

type substrExpr struct {
	a        Expr
	start, n int
}

func (e substrExpr) Eval(b *table.Batch) (*column.Vector, error) {
	av, err := e.a.Eval(b)
	if err != nil {
		return nil, err
	}
	if av.Typ != column.String {
		return nil, fmt.Errorf("exec: SUBSTRING on %v", av.Typ)
	}
	out := make([]string, av.Len())
	for i, s := range av.Str {
		lo := e.start - 1
		if lo < 0 {
			lo = 0
		}
		hi := lo + e.n
		if lo > len(s) {
			lo = len(s)
		}
		if hi > len(s) {
			hi = len(s)
		}
		out[i] = s[lo:hi]
	}
	return &column.Vector{Typ: column.String, Str: out}, nil
}

// Year extracts the calendar year of a date (int64 days) expression.
func Year(a Expr) Expr { return yearExpr{a} }

type yearExpr struct{ a Expr }

func (e yearExpr) Eval(b *table.Batch) (*column.Vector, error) {
	av, err := e.a.Eval(b)
	if err != nil {
		return nil, err
	}
	if av.Typ != column.Int64 {
		return nil, fmt.Errorf("exec: YEAR on %v", av.Typ)
	}
	out := make([]int64, av.Len())
	for i, d := range av.I64 {
		out[i] = int64(column.DaysToDate(d).Year())
	}
	return &column.Vector{Typ: column.Int64, I64: out}, nil
}
