package exec

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"cloudiq/internal/column"
	"cloudiq/internal/objstore"
	"cloudiq/internal/table"
	"cloudiq/internal/trace"
)

// Source streams batches; Next returns (nil, nil) at end of stream.
type Source interface {
	Next(ctx context.Context) (*table.Batch, error)
}

// ZonePred prunes segments whose zone map cannot match.
type ZonePred struct {
	Col string
	ok  func(z column.ZoneMap) bool
}

// ZoneI prunes on an int64 range [lo, hi].
func ZoneI(col string, lo, hi int64) ZonePred {
	return ZonePred{Col: col, ok: func(z column.ZoneMap) bool { return z.MayContainI64(lo, hi) }}
}

// ZoneF prunes on a float range [lo, hi].
func ZoneF(col string, lo, hi float64) ZonePred {
	return ZonePred{Col: col, ok: func(z column.ZoneMap) bool { return z.MayContainF64(lo, hi) }}
}

// ZoneS prunes on a string range [lo, hi].
func ZoneS(col string, lo, hi string) ZonePred {
	return ZonePred{Col: col, ok: func(z column.ZoneMap) bool { return z.MayContainStr(lo, hi) }}
}

// ScanOptions tunes a table scan.
type ScanOptions struct {
	// Filter, if non-nil, is applied to every segment batch.
	Filter Expr
	// Zones prune whole segments before any I/O.
	Zones []ZonePred
	// Prefetch is the segment read-ahead window. Zero selects 4; a
	// negative value disables read-ahead entirely, making the scan fully
	// synchronous (deterministic simulation harnesses rely on this).
	Prefetch int
	// Pushdown lets the scan evaluate Filter inside the object store's
	// compute endpoint, per segment, returning only qualifying rows. Off by
	// default; results are identical in every mode (failed pushdowns fall
	// back to plain reads).
	Pushdown PushdownMode
}

type scanSource struct {
	tbl      *table.Table
	cols     []int
	colNames []string
	opts     ScanOptions
	segs     []int // surviving segments after zone pruning
	pos      int
	fetched  int

	planFilter *objstore.PlanExpr // translated Filter, when pushdown is on
	push       []bool             // per-segment pushdown decision, parallel to segs
	emitted    bool               // whether any batch has been returned yet
	deltaDone  bool               // whether the delta merge batch was emitted
}

// Scan streams the named columns of t, pruning segments by zone maps and
// prefetching ahead of the consumer — the paper's parallel-I/O recipe for
// masking object-store latency.
func Scan(t *table.Table, cols []string, opts ScanOptions) (Source, error) {
	s := &scanSource{tbl: t, colNames: cols, opts: opts}
	if s.opts.Prefetch == 0 {
		s.opts.Prefetch = 4
	}
	if s.opts.Prefetch < 0 {
		s.opts.Prefetch = 0 // synchronous: no read-ahead window
	}
	for _, name := range cols {
		i := t.Schema().ColIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("exec: scan of %s: no column %q", t.Name(), name)
		}
		s.cols = append(s.cols, i)
	}
	for seg := 0; seg < t.Segments(); seg++ {
		sm := t.Seg(seg)
		keep := true
		for _, zp := range opts.Zones {
			ci := t.Schema().ColIndex(zp.Col)
			if ci < 0 {
				return nil, fmt.Errorf("exec: zone predicate on unknown column %q", zp.Col)
			}
			if !zp.ok(sm.Zones[ci]) {
				keep = false
				break
			}
		}
		if keep {
			s.segs = append(s.segs, seg)
		}
	}
	s.planPushdown()
	return s, nil
}

func (s *scanSource) Next(ctx context.Context) (*table.Batch, error) {
	if s.pos >= len(s.segs) {
		// After the encoded segments, merge in the table's delta rows (the
		// trickle inserts visible to this snapshot but not yet compacted).
		// Zone pruning never applies to them — they carry no zone maps —
		// but the row filter does, so the merged stream is exactly what a
		// scan over a compacted table would produce.
		if !s.deltaDone {
			s.deltaDone = true
			b, err := s.deltaBatch()
			if err != nil {
				return nil, err
			}
			if b != nil {
				s.emitted = true
				return b, nil
			}
		}
		// A scan that pruned (or never had) every segment still yields one
		// typed empty batch: downstream operators need the schema to type
		// their output, exactly as a filter that removed every row leaves
		// behind. Without this, an all-pruned scan diverged from the
		// equivalent unpruned-but-fully-filtered one.
		if !s.emitted {
			s.emitted = true
			return s.emptyBatch(), nil
		}
		return nil, nil
	}
	// A scan is a schedulable unit: between segments it offers its
	// reader slot back to whatever scheduler runs it, so one long scan
	// cannot starve a priority lane.
	if err := YieldPoint(ctx); err != nil {
		return nil, err
	}
	// Keep the read-ahead window full. Segments headed for pushdown are
	// skipped: prefetching would pull whole column pages into the cache
	// that the select path never reads.
	if s.fetched < s.pos+s.opts.Prefetch && s.fetched < len(s.segs) {
		pctx, psp := trace.Start(ctx, "scan.prefetch",
			trace.String("table", s.tbl.Name()), trace.Int("from", int64(s.fetched)))
		n := 0
		for s.fetched < s.pos+s.opts.Prefetch && s.fetched < len(s.segs) {
			if s.push == nil || !s.push[s.fetched] {
				s.tbl.PrefetchSegments(pctx, []int{s.segs[s.fetched]}, s.cols)
				n++
			}
			s.fetched++
		}
		psp.AddInt("segments", int64(n))
		psp.End()
	}
	rctx, rsp := trace.Start(ctx, "scan.segment",
		trace.String("table", s.tbl.Name()), trace.Int("seg", int64(s.segs[s.pos])))
	var b *table.Batch
	var err error
	pushed := false
	if s.push != nil && s.push[s.pos] {
		b, err = s.pushSegment(rctx, s.segs[s.pos])
		if err == nil {
			pushed = true
			rsp.AddInt("pushdown", 1)
		} else {
			// Every pushdown failure — store without the capability,
			// unsupported plan, injected fault, dirty page — degrades to
			// the plain read path below.
			rsp.SetAttr("fallback", err.Error())
		}
	}
	if !pushed {
		b, err = s.tbl.ReadSegment(rctx, s.segs[s.pos], s.cols)
		if err != nil {
			rsp.SetAttr("err", err.Error())
			rsp.End()
			return nil, err
		}
	}
	rsp.AddInt("rows", int64(b.Rows()))
	rsp.End()
	s.pos++
	if !pushed && s.opts.Filter != nil {
		// Empty filtered batches are still returned: their schema lets
		// downstream operators (joins, aggregations) type their output
		// even when every row was filtered out. Pushed batches arrive
		// already filtered.
		b, err = FilterBatch(b, s.opts.Filter)
		if err != nil {
			return nil, err
		}
	}
	s.emitted = true
	return b, nil
}

// deltaBatch projects the scan's columns out of the table's attached delta
// view and applies the row filter, returning nil when there is no view (or
// it is empty).
func (s *scanSource) deltaBatch() (*table.Batch, error) {
	dv := s.tbl.Delta()
	if dv == nil {
		return nil, nil
	}
	full := dv.DeltaBatch()
	if full == nil || full.Rows() == 0 {
		return nil, nil
	}
	b := &table.Batch{Vecs: make([]*column.Vector, len(s.cols))}
	for i, c := range s.cols {
		b.Schema.Cols = append(b.Schema.Cols, full.Schema.Cols[c])
		b.Vecs[i] = full.Vecs[c]
	}
	if s.opts.Filter != nil {
		return FilterBatch(b, s.opts.Filter)
	}
	return b, nil
}

// SliceSource feeds pre-materialized batches as a Source.
func SliceSource(batches ...*table.Batch) Source {
	return &sliceSource{batches: batches}
}

type sliceSource struct {
	batches []*table.Batch
	pos     int
}

func (s *sliceSource) Next(ctx context.Context) (*table.Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	return b, nil
}

// Collect drains src into one batch.
func Collect(ctx context.Context, src Source) (*table.Batch, error) {
	var out *table.Batch
	for {
		b, err := src.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if out == nil {
			out = &table.Batch{Schema: b.Schema, Vecs: make([]*column.Vector, len(b.Vecs))}
			for i, v := range b.Vecs {
				nv := column.NewVector(v.Typ)
				out.Vecs[i] = nv
			}
		}
		for i, v := range b.Vecs {
			for r := 0; r < v.Len(); r++ {
				out.Vecs[i].Append(v, r)
			}
		}
	}
	if out == nil {
		return &table.Batch{}, nil
	}
	return out, nil
}

// FilterBatch returns the rows of b where pred is non-zero.
func FilterBatch(b *table.Batch, pred Expr) (*table.Batch, error) {
	pv, err := pred.Eval(b)
	if err != nil {
		return nil, err
	}
	if pv.Typ != column.Int64 {
		return nil, fmt.Errorf("exec: filter predicate yields %v", pv.Typ)
	}
	var rows []int
	for i, x := range pv.I64 {
		if x != 0 {
			rows = append(rows, i)
		}
	}
	out := &table.Batch{Schema: b.Schema, Vecs: make([]*column.Vector, len(b.Vecs))}
	for i, v := range b.Vecs {
		out.Vecs[i] = v.Gather(rows)
	}
	return out, nil
}

// NamedExpr pairs an output column name with its expression.
type NamedExpr struct {
	Name string
	Expr Expr
}

// Project evaluates the expressions over b into a new batch.
func Project(b *table.Batch, exprs []NamedExpr) (*table.Batch, error) {
	out := &table.Batch{}
	for _, ne := range exprs {
		v, err := ne.Expr.Eval(b)
		if err != nil {
			return nil, fmt.Errorf("exec: project %s: %w", ne.Name, err)
		}
		out.Schema.Cols = append(out.Schema.Cols, table.ColumnDef{Name: ne.Name, Typ: v.Typ})
		out.Vecs = append(out.Vecs, v)
	}
	return out, nil
}

// --- key encoding for joins and grouping ---

func keyCols(b *table.Batch, names []string) ([]*column.Vector, error) {
	vecs := make([]*column.Vector, len(names))
	for i, n := range names {
		ci := b.Schema.ColIndex(n)
		if ci < 0 {
			return nil, fmt.Errorf("exec: key column %q missing", n)
		}
		vecs[i] = b.Vecs[ci]
	}
	return vecs, nil
}

func rowKey(buf []byte, vecs []*column.Vector, row int) []byte {
	for _, v := range vecs {
		switch v.Typ {
		case column.Int64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I64[row]))
		case column.Float64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F64[row]))
		default:
			buf = append(buf, v.Str[row]...)
			buf = append(buf, 0)
		}
	}
	return buf
}

// JoinType selects join semantics. The preserved side is always the probe.
type JoinType uint8

// Supported join types.
const (
	// Inner emits build ⨝ probe matches.
	Inner JoinType = iota
	// LeftOuter emits every probe row, zero-filling build columns on a miss.
	LeftOuter
	// Semi emits probe rows with at least one match (probe columns only).
	Semi
	// Anti emits probe rows with no match (probe columns only).
	Anti
)

// HashJoin builds a hash table over build and probes it with probe. Output
// columns are the probe columns followed by the build columns (for Inner
// and LeftOuter); column names must be disjoint, which TPC-H's prefixed
// names guarantee.
func HashJoin(ctx context.Context, build Source, buildKeys []string, probe Source, probeKeys []string, typ JoinType) (*table.Batch, error) {
	bb, err := Collect(ctx, build)
	if err != nil {
		return nil, err
	}
	buildEmpty := len(bb.Vecs) == 0
	if buildEmpty && typ == Inner {
		return &table.Batch{}, nil
	}
	ht := make(map[string][]int)
	var kb []byte
	if !buildEmpty {
		bvecs, err := keyCols(bb, buildKeys)
		if err != nil {
			return nil, err
		}
		for r := 0; r < bb.Rows(); r++ {
			kb = rowKey(kb[:0], bvecs, r)
			ht[string(kb)] = append(ht[string(kb)], r)
		}
	}

	var out *table.Batch
	initOut := func(pb *table.Batch) {
		out = &table.Batch{}
		out.Schema.Cols = append(out.Schema.Cols, pb.Schema.Cols...)
		for _, v := range pb.Vecs {
			out.Vecs = append(out.Vecs, column.NewVector(v.Typ))
		}
		if typ == Inner || typ == LeftOuter {
			out.Schema.Cols = append(out.Schema.Cols, bb.Schema.Cols...)
			for _, v := range bb.Vecs {
				out.Vecs = append(out.Vecs, column.NewVector(v.Typ))
			}
		}
	}

	for {
		pb, err := probe.Next(ctx)
		if err != nil {
			return nil, err
		}
		if pb == nil {
			break
		}
		if len(pb.Vecs) == 0 {
			continue // schemaless empty batch
		}
		if out == nil {
			initOut(pb)
		}
		pvecs, err := keyCols(pb, probeKeys)
		if err != nil {
			return nil, err
		}
		np := len(pb.Vecs)
		for r := 0; r < pb.Rows(); r++ {
			kb = rowKey(kb[:0], pvecs, r)
			matches := ht[string(kb)]
			switch typ {
			case Semi:
				if len(matches) > 0 {
					for c, v := range pb.Vecs {
						out.Vecs[c].Append(v, r)
					}
				}
			case Anti:
				if len(matches) == 0 {
					for c, v := range pb.Vecs {
						out.Vecs[c].Append(v, r)
					}
				}
			case LeftOuter:
				if len(matches) == 0 {
					for c, v := range pb.Vecs {
						out.Vecs[c].Append(v, r)
					}
					for c, v := range bb.Vecs {
						appendZero(out.Vecs[np+c], v.Typ)
					}
					continue
				}
				fallthrough
			default: // Inner (and LeftOuter with matches)
				for _, m := range matches {
					for c, v := range pb.Vecs {
						out.Vecs[c].Append(v, r)
					}
					for c, v := range bb.Vecs {
						out.Vecs[np+c].Append(v, m)
					}
				}
			}
		}
	}
	if out == nil {
		return &table.Batch{}, nil
	}
	return out, nil
}

func appendZero(v *column.Vector, t column.Type) {
	switch t {
	case column.Int64:
		v.AppendInt(0)
	case column.Float64:
		v.AppendFloat(0)
	default:
		v.AppendStr("")
	}
}

// --- aggregation ---

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Supported aggregates.
const (
	Sum AggFunc = iota
	Avg
	Min
	Max
	Count
	CountDistinct
)

// Agg is one aggregate column: Func over Expr (nil for Count(*)), emitted
// as As.
type Agg struct {
	Func AggFunc
	Expr Expr
	As   string
}

type aggState struct {
	sumF     float64
	sumI     int64
	count    int64
	minF     float64
	maxF     float64
	minI     int64
	maxI     int64
	minS     string
	maxS     string
	seen     bool
	distinct map[string]struct{}
	typ      column.Type
}

type group struct {
	keyVals []any
	states  []*aggState
}

// HashAgg groups src by the named columns and computes the aggregates.
// With no group columns, a single global group is produced (even on empty
// input, matching SQL aggregate semantics).
func HashAgg(ctx context.Context, src Source, groupBy []string, aggs []Agg) (*table.Batch, error) {
	groups := make(map[string]*group)
	var order []string // deterministic-ish output: first-seen order
	var groupTypes []column.Type

	for {
		b, err := src.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if len(b.Vecs) == 0 {
			continue // schemaless empty batch
		}
		gvecs, err := keyCols(b, groupBy)
		if err != nil {
			return nil, err
		}
		if groupTypes == nil {
			for _, v := range gvecs {
				groupTypes = append(groupTypes, v.Typ)
			}
		}
		// Evaluate aggregate inputs once per batch.
		inputs := make([]*column.Vector, len(aggs))
		for i, a := range aggs {
			if a.Expr == nil {
				continue
			}
			v, err := a.Expr.Eval(b)
			if err != nil {
				return nil, err
			}
			inputs[i] = v
		}
		var kb []byte
		for r := 0; r < b.Rows(); r++ {
			kb = rowKey(kb[:0], gvecs, r)
			g, ok := groups[string(kb)]
			if !ok {
				g = &group{states: make([]*aggState, len(aggs))}
				for i := range g.states {
					g.states[i] = &aggState{}
				}
				for _, v := range gvecs {
					switch v.Typ {
					case column.Int64:
						g.keyVals = append(g.keyVals, v.I64[r])
					case column.Float64:
						g.keyVals = append(g.keyVals, v.F64[r])
					default:
						g.keyVals = append(g.keyVals, v.Str[r])
					}
				}
				groups[string(kb)] = g
				order = append(order, string(kb))
			}
			for i, a := range aggs {
				updateAgg(g.states[i], a, inputs[i], r)
			}
		}
	}

	if len(groupBy) == 0 && len(groups) == 0 {
		g := &group{states: make([]*aggState, len(aggs))}
		for i := range g.states {
			g.states[i] = &aggState{}
		}
		groups[""] = g
		order = append(order, "")
	}

	out := &table.Batch{}
	for i, name := range groupBy {
		// With zero input batches the group types are unknown; default to
		// Int64 — the result has no rows, so only the names matter.
		t := column.Int64
		if i < len(groupTypes) {
			t = groupTypes[i]
		}
		out.Schema.Cols = append(out.Schema.Cols, table.ColumnDef{Name: name, Typ: t})
		out.Vecs = append(out.Vecs, column.NewVector(t))
	}
	for i, a := range aggs {
		t := aggOutputType(a, groups, order, i)
		out.Schema.Cols = append(out.Schema.Cols, table.ColumnDef{Name: a.As, Typ: t})
		out.Vecs = append(out.Vecs, column.NewVector(t))
	}
	for _, k := range order {
		g := groups[k]
		for i := range groupBy {
			switch v := g.keyVals[i].(type) {
			case int64:
				out.Vecs[i].AppendInt(v)
			case float64:
				out.Vecs[i].AppendFloat(v)
			case string:
				out.Vecs[i].AppendStr(v)
			}
		}
		for i, a := range aggs {
			emitAgg(out.Vecs[len(groupBy)+i], g.states[i], a)
		}
	}
	return out, nil
}

func updateAgg(st *aggState, a Agg, input *column.Vector, r int) {
	if a.Func == Count && a.Expr == nil {
		st.count++
		return
	}
	st.typ = input.Typ
	switch a.Func {
	case CountDistinct:
		if st.distinct == nil {
			st.distinct = make(map[string]struct{})
		}
		st.distinct[string(rowKey(nil, []*column.Vector{input}, r))] = struct{}{}
	case Count:
		st.count++
	case Sum, Avg:
		st.count++
		switch input.Typ {
		case column.Int64:
			st.sumI += input.I64[r]
			st.sumF += float64(input.I64[r])
		default:
			st.sumF += input.F64[r]
		}
	case Min, Max:
		st.count++
		switch input.Typ {
		case column.Int64:
			x := input.I64[r]
			if !st.seen || x < st.minI {
				st.minI = x
			}
			if !st.seen || x > st.maxI {
				st.maxI = x
			}
		case column.Float64:
			x := input.F64[r]
			if !st.seen || x < st.minF {
				st.minF = x
			}
			if !st.seen || x > st.maxF {
				st.maxF = x
			}
		default:
			x := input.Str[r]
			if !st.seen || x < st.minS {
				st.minS = x
			}
			if !st.seen || x > st.maxS {
				st.maxS = x
			}
		}
		st.seen = true
	}
}

func aggOutputType(a Agg, groups map[string]*group, order []string, i int) column.Type {
	switch a.Func {
	case Count, CountDistinct:
		return column.Int64
	case Avg:
		return column.Float64
	}
	// Sum/Min/Max follow the input type; inspect any group.
	for _, k := range order {
		st := groups[k].states[i]
		if st.count > 0 || st.seen {
			return st.typ
		}
	}
	return column.Float64
}

func emitAgg(v *column.Vector, st *aggState, a Agg) {
	switch a.Func {
	case Count:
		v.AppendInt(st.count)
	case CountDistinct:
		v.AppendInt(int64(len(st.distinct)))
	case Avg:
		if st.count == 0 {
			v.AppendFloat(0)
		} else {
			v.AppendFloat(st.sumF / float64(st.count))
		}
	case Sum:
		if v.Typ == column.Int64 {
			v.AppendInt(st.sumI)
		} else {
			v.AppendFloat(st.sumF)
		}
	case Min:
		switch v.Typ {
		case column.Int64:
			v.AppendInt(st.minI)
		case column.Float64:
			v.AppendFloat(st.minF)
		default:
			v.AppendStr(st.minS)
		}
	case Max:
		switch v.Typ {
		case column.Int64:
			v.AppendInt(st.maxI)
		case column.Float64:
			v.AppendFloat(st.maxF)
		default:
			v.AppendStr(st.maxS)
		}
	}
}

// --- sort & limit ---

// SortKey orders by one column.
type SortKey struct {
	Col  string
	Desc bool
}

// Sort returns b ordered by the keys (stable).
func Sort(b *table.Batch, keys []SortKey) (*table.Batch, error) {
	type keyVec struct {
		v    *column.Vector
		desc bool
	}
	kvs := make([]keyVec, len(keys))
	for i, k := range keys {
		ci := b.Schema.ColIndex(k.Col)
		if ci < 0 {
			return nil, fmt.Errorf("exec: sort key %q missing", k.Col)
		}
		kvs[i] = keyVec{b.Vecs[ci], k.Desc}
	}
	rows := make([]int, b.Rows())
	for i := range rows {
		rows[i] = i
	}
	sort.SliceStable(rows, func(x, y int) bool {
		rx, ry := rows[x], rows[y]
		for _, kv := range kvs {
			var c int
			switch kv.v.Typ {
			case column.Int64:
				a, b := kv.v.I64[rx], kv.v.I64[ry]
				if a < b {
					c = -1
				} else if a > b {
					c = 1
				}
			case column.Float64:
				a, b := kv.v.F64[rx], kv.v.F64[ry]
				if a < b {
					c = -1
				} else if a > b {
					c = 1
				}
			default:
				a, b := kv.v.Str[rx], kv.v.Str[ry]
				if a < b {
					c = -1
				} else if a > b {
					c = 1
				}
			}
			if kv.desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := &table.Batch{Schema: b.Schema, Vecs: make([]*column.Vector, len(b.Vecs))}
	for i, v := range b.Vecs {
		out.Vecs[i] = v.Gather(rows)
	}
	return out, nil
}

// Limit returns the first n rows of b.
func Limit(b *table.Batch, n int) *table.Batch {
	if b.Rows() <= n {
		return b
	}
	out := &table.Batch{Schema: b.Schema, Vecs: make([]*column.Vector, len(b.Vecs))}
	for i, v := range b.Vecs {
		out.Vecs[i] = v.Slice(0, n)
	}
	return out
}
