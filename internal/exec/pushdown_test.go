package exec

// Pushdown differential tests: every scan mode must return byte-identical
// rows. Row-mode pushdown re-encodes the qualifying rows store-side with the
// same segment codec the reader uses, so the comparison is exact (bitwise,
// via the encoded images) — including under injected obj.select faults that
// force mid-query fallback to plain reads.

import (
	"bytes"
	"context"
	"math"
	"testing"

	"cloudiq/internal/buffer"
	"cloudiq/internal/column"
	"cloudiq/internal/core"
	"cloudiq/internal/faultinject"
	"cloudiq/internal/keygen"
	"cloudiq/internal/mt"
	"cloudiq/internal/objstore"
	"cloudiq/internal/rfrb"
	"cloudiq/internal/table"
)

var diffCols = []string{"a", "b", "f", "g", "s", "t"}

// pushdownTable stores rows of the differential schema (a,b int; f,g float;
// s,t string) in small segments on the given store. The tiny pool capacity
// keeps the page cache cold so plain reads actually hit the store.
func pushdownTable(t *testing.T, store *objstore.MemStore, rows, segRows int, seed uint64) (*table.Table, []diffRow) {
	t.Helper()
	gen := keygen.NewGenerator(nil)
	client := keygen.NewClient(func(ctx context.Context, n uint64) (rfrb.Range, error) {
		return gen.Allocate(ctx, "n", n)
	})
	ds := core.NewCloud(core.CloudConfig{Name: "user", Store: store, Keys: client})
	pool := buffer.NewPool(buffer.Config{Capacity: 4096})
	bm, err := core.NewBlockmap(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	obj := pool.OpenObject(ds, bm, core.LockedSink(core.BitmapSink{RB: &rfrb.Bitmap{}, RF: &rfrb.Bitmap{}}), nil)
	tbl, err := table.Create("t", obj, table.Schema{Cols: []table.ColumnDef{
		intCol("a"), intCol("b"), fltCol("f"), fltCol("g"), strCol("s"), strCol("t"),
	}}, table.Options{SegRows: segRows})
	if err != nil {
		t.Fatal(err)
	}
	rng := mt.New(seed)
	b, data := diffBatch(rng, rows)
	if err := tbl.Append(ctxb(), b); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Commit(ctxb()); err != nil {
		t.Fatal(err)
	}
	return tbl, data
}

// sameBatch compares two batches bitwise through their encoded segment
// images, so float payloads are compared exactly.
func sameBatch(a, b *table.Batch) bool {
	if len(a.Vecs) != len(b.Vecs) || len(a.Schema.Cols) != len(b.Schema.Cols) {
		return false
	}
	for i := range a.Vecs {
		if a.Schema.Cols[i] != b.Schema.Cols[i] {
			return false
		}
		if !bytes.Equal(column.EncodeSegment(a.Vecs[i]), column.EncodeSegment(b.Vecs[i])) {
			return false
		}
	}
	return true
}

func collectScan(t *testing.T, tbl *table.Table, opts ScanOptions) *table.Batch {
	t.Helper()
	opts.Prefetch = -1
	src, err := Scan(tbl, diffCols, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(ctxb(), src)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPushdownDifferentialScan runs random filters through all three scan
// modes and demands byte-identical results. Filters that the plan language
// cannot express (CASE, SUBSTRING) exercise the whole-scan fallback; the
// rest exercise store-side evaluation.
func TestPushdownDifferentialScan(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	tbl, _ := pushdownTable(t, store, 500, 64, 0x9055)
	rng := mt.New(0x9056)
	g := &diffGen{rng: rng}
	trials := diffTrials(t)
	for trial := 0; trial < trials; trial++ {
		pred := g.boolExpr(3)
		plain := collectScan(t, tbl, ScanOptions{Filter: pred.expr()})
		forced := collectScan(t, tbl, ScanOptions{Filter: pred.expr(), Pushdown: PushdownForce})
		auto := collectScan(t, tbl, ScanOptions{Filter: pred.expr(), Pushdown: PushdownAuto})
		if !sameBatch(plain, forced) {
			t.Fatalf("trial %d: %s: forced pushdown diverged (%d vs %d rows)",
				trial, pred, forced.Rows(), plain.Rows())
		}
		if !sameBatch(plain, auto) {
			t.Fatalf("trial %d: %s: auto pushdown diverged (%d vs %d rows)",
				trial, pred, auto.Rows(), plain.Rows())
		}
	}
	if store.Metrics().Selects() == 0 {
		t.Fatal("no select ever reached the store; pushdown never engaged")
	}
}

// TestPushdownFaultFallback injects obj.select faults — total and
// probabilistic — and demands the scan still return exactly the plain
// result, with the failed segments served by plain reads mid-query.
func TestPushdownFaultFallback(t *testing.T) {
	pred := And(Ge(Col("a"), ConstI(-3)), Lt(Col("b"), ConstI(40)))

	plainStore := objstore.NewMem(objstore.Config{})
	plainTbl, _ := pushdownTable(t, plainStore, 400, 64, 0x9077)
	want := collectScan(t, plainTbl, ScanOptions{Filter: pred})

	for name, arm := range map[string]func(*faultinject.Plan){
		"always": func(p *faultinject.Plan) { p.Always(faultinject.ObjSelect) },
		"some":   func(p *faultinject.Plan) { p.Prob(faultinject.ObjSelect, 0.5) },
		"first":  func(p *faultinject.Plan) { p.FailNext(faultinject.ObjSelect, 1) },
	} {
		plan := faultinject.New(0xFA17)
		arm(plan)
		store := objstore.NewMem(objstore.Config{Faults: plan})
		tbl, _ := pushdownTable(t, store, 400, 64, 0x9077)
		got := collectScan(t, tbl, ScanOptions{Filter: pred, Pushdown: PushdownForce})
		if !sameBatch(want, got) {
			t.Fatalf("%s: faulted pushdown scan diverged (%d vs %d rows)", name, got.Rows(), want.Rows())
		}
		if plan.Calls(faultinject.ObjSelect) == 0 {
			t.Fatalf("%s: fault site never consulted", name)
		}
	}
}

// TestScanAllPrunedTypedEmpty pins the satellite bugfix: a scan whose every
// segment is zone-pruned must produce the same typed empty batch as a scan
// whose filter removed every row — not a schemaless one that downstream
// operators cannot type.
func TestScanAllPrunedTypedEmpty(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	tbl, _ := pushdownTable(t, store, 300, 64, 0x90AA)

	// a is drawn from [-10, 10]; this zone range prunes every segment.
	pruned := collectScan(t, tbl, ScanOptions{Zones: []ZonePred{ZoneI("a", 1000, 2000)}})
	// The reference reads everything and filters every row out.
	filtered := collectScan(t, tbl, ScanOptions{Filter: Eq(Col("a"), ConstI(99999))})

	if pruned.Rows() != 0 || filtered.Rows() != 0 {
		t.Fatalf("rows = %d / %d, want 0", pruned.Rows(), filtered.Rows())
	}
	if len(pruned.Schema.Cols) == 0 {
		t.Fatal("all-pruned scan lost its schema")
	}
	if !sameBatch(pruned, filtered) {
		t.Fatalf("all-pruned scan diverged from all-filtered scan: %+v vs %+v",
			pruned.Schema, filtered.Schema)
	}

	// Aggregating over the pruned scan must produce the same zero-count
	// global group as the naive all-filtered reference — same types, same
	// values.
	aggs := []Agg{
		{Func: Count, As: "n"},
		{Func: Sum, Expr: Col("a"), As: "suma"},
	}
	refSrc, err := Scan(tbl, diffCols, ScanOptions{
		Filter: Eq(Col("a"), ConstI(99999)), Prefetch: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := HashAgg(ctxb(), refSrc, nil, aggs)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []PushdownMode{PushdownOff, PushdownForce} {
		src, err := Scan(tbl, diffCols, ScanOptions{
			Zones: []ZonePred{ZoneI("a", 1000, 2000)}, Prefetch: -1, Pushdown: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := HashAgg(ctxb(), src, nil, aggs)
		if err != nil {
			t.Fatal(err)
		}
		if out.Rows() != 1 || out.Col("n").I64[0] != 0 {
			t.Fatalf("mode %d: empty aggregate = %+v", mode, out)
		}
		if !sameBatch(ref, out) {
			t.Fatalf("mode %d: pruned aggregate %+v diverged from reference %+v",
				mode, out.Schema, ref.Schema)
		}
	}
}

// TestScanAggDifferential checks pushed partial aggregation against HashAgg
// over a plain scan. Counts, min/max and integer sums must match exactly;
// float sums are compared with a relative epsilon (partitioned summation
// regroups the additions).
func TestScanAggDifferential(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	tbl, _ := pushdownTable(t, store, 500, 64, 0x90BB)
	rng := mt.New(0x90BC)
	g := &diffGen{rng: rng}
	trials := diffTrials(t) / 5
	for trial := 0; trial < trials; trial++ {
		pred := g.boolExpr(2)
		e := g.numExpr(2)
		aggs := []Agg{
			{Func: Count, As: "n"},
			{Func: Sum, Expr: e.expr(), As: "sum"},
			{Func: Min, Expr: e.expr(), As: "min"},
			{Func: Max, Expr: e.expr(), As: "max"},
		}
		opts := ScanOptions{Filter: pred.expr(), Prefetch: -1}
		src, err := Scan(tbl, diffCols, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := HashAgg(ctxb(), src, nil, aggs)
		if err != nil {
			t.Fatal(err)
		}
		opts.Pushdown = PushdownForce
		got, err := ScanAgg(ctxb(), tbl, diffCols, opts, aggs)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows() != 1 || want.Rows() != 1 {
			t.Fatalf("trial %d: rows = %d / %d", trial, got.Rows(), want.Rows())
		}
		for i, c := range want.Schema.Cols {
			if got.Schema.Cols[i] != c {
				t.Fatalf("trial %d: %s / %s: column %d typed %+v, want %+v",
					trial, pred, e, i, got.Schema.Cols[i], c)
			}
			switch c.Typ {
			case column.Int64:
				if got.Vecs[i].I64[0] != want.Vecs[i].I64[0] {
					t.Fatalf("trial %d: %s / %s: %s = %d, want %d",
						trial, pred, e, c.Name, got.Vecs[i].I64[0], want.Vecs[i].I64[0])
				}
			case column.Float64:
				gv, wv := got.Vecs[i].F64[0], want.Vecs[i].F64[0]
				if c.Name == "sum" {
					if diff := math.Abs(gv - wv); diff > 1e-9*math.Max(1, math.Abs(wv)) {
						t.Fatalf("trial %d: %s / %s: sum = %v, want %v",
							trial, pred, e, gv, wv)
					}
				} else if gv != wv && !(math.IsNaN(gv) && math.IsNaN(wv)) {
					t.Fatalf("trial %d: %s / %s: %s = %v, want %v",
						trial, pred, e, c.Name, gv, wv)
				}
			}
		}
	}
	if store.Metrics().Selects() == 0 {
		t.Fatal("no aggregate pushdown ever reached the store")
	}
}

// TestPushdownByteAsymmetry pins the economics: a selective pushed-down scan
// must move an order of magnitude fewer bytes out of the store than the same
// scan shipping whole segments.
func TestPushdownByteAsymmetry(t *testing.T) {
	// Equality on `a` keeps roughly 1/21 of the rows.
	pred := Eq(Col("a"), ConstI(3))

	bytesFor := func(mode PushdownMode) int64 {
		store := objstore.NewMem(objstore.Config{})
		tbl, _ := pushdownTable(t, store, 2000, 128, 0x90CC)
		store.Metrics().Reset()
		out := collectScan(t, tbl, ScanOptions{Filter: pred, Pushdown: mode})
		if out.Rows() == 0 {
			t.Fatal("selective filter matched nothing; test data wrong")
		}
		return store.Metrics().BytesOut()
	}

	plain := bytesFor(PushdownOff)
	pushed := bytesFor(PushdownForce)
	if pushed*5 > plain {
		t.Fatalf("pushdown moved %dB vs %dB plain; expected at least 5x reduction", pushed, plain)
	}
}

// TestTranslateExpr covers the plan lowering: pushable nodes round-trip
// through the store evaluator, unpushable ones are refused.
func TestTranslateExpr(t *testing.T) {
	pushable := []Expr{
		Col("a"),
		ConstI(5),
		ConstF(2.5),
		ConstS("x"),
		Add(Col("a"), ConstI(1)),
		Div(Col("b"), ConstI(2)),
		Lt(Col("f"), ConstF(3)),
		And(Ge(Col("a"), ConstI(0)), Not(Eq(Col("s"), ConstS("alpha")))),
		Or(Like(Col("s"), "alp%"), NotLike(Col("t"), "%ta")),
		InS(Col("s"), "beta", "alpha"),
	}
	for i, e := range pushable {
		if _, ok := translateExpr(e); !ok {
			t.Errorf("expr %d: not translated", i)
		}
	}
	unpushable := []Expr{
		Case(Eq(Col("a"), ConstI(1)), ConstI(1), ConstI(0)),
		Substr(Col("s"), 1, 2),
		Year(Col("a")),
		Eq(Substr(Col("s"), 1, 2), ConstS("al")),
	}
	for i, e := range unpushable {
		if _, ok := translateExpr(e); ok {
			t.Errorf("unpushable expr %d: translated", i)
		}
	}
	// IN sets are emitted sorted for deterministic plans.
	pe, ok := translateExpr(InS(Col("s"), "zeta", "alpha", "mid"))
	if !ok || len(pe.Set) != 3 || pe.Set[0] != "alpha" || pe.Set[2] != "zeta" {
		t.Fatalf("IN set = %+v", pe)
	}
}

// TestEstimateSelectivity sanity-checks the zone-map heuristic on known
// ranges.
func TestEstimateSelectivity(t *testing.T) {
	sch := table.Schema{Cols: []table.ColumnDef{intCol("a"), fltCol("f")}}
	zones := []column.ZoneMap{
		column.BuildZoneMap(&column.Vector{Typ: column.Int64, I64: []int64{0, 99}}),
		column.BuildZoneMap(&column.Vector{Typ: column.Float64, F64: []float64{0, 10}}),
	}
	cases := []struct {
		e        Expr
		lo, hi   float64
		wantPush bool
	}{
		{Eq(Col("a"), ConstI(5)), 0, 0.05, true},
		{Lt(Col("a"), ConstI(10)), 0.05, 0.15, true},
		{Ge(Col("a"), ConstI(10)), 0.85, 0.95, false},
		{Le(Col("f"), ConstF(2.5)), 0.2, 0.3, true},
		{ConstI(10), 0.4, 0.6, true}, // unknown shape answers 0.5
		{And(Lt(Col("a"), ConstI(50)), Le(Col("f"), ConstF(5))), 0.2, 0.3, true},
		{Gt(ConstI(10), Col("a")), 0.05, 0.15, true}, // mirrored form flips
	}
	for i, c := range cases {
		sel := estimateSelectivity(c.e, sch, zones)
		if sel < c.lo || sel > c.hi {
			t.Errorf("case %d: selectivity %v outside [%v, %v]", i, sel, c.lo, c.hi)
		}
		if (sel <= autoPushThreshold) != c.wantPush {
			t.Errorf("case %d: push decision %v, want %v", i, sel <= autoPushThreshold, c.wantPush)
		}
	}
	// Inverted (empty-segment) bounds estimate zero rows.
	empty := []column.ZoneMap{column.BuildZoneMap(&column.Vector{Typ: column.Int64})}
	if sel := estimateSelectivity(Eq(Col("a"), ConstI(1)), table.Schema{Cols: []table.ColumnDef{intCol("a")}}, empty); sel != 0 {
		t.Errorf("empty segment selectivity = %v", sel)
	}
}
