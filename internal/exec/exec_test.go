package exec

import (
	"context"
	"reflect"
	"testing"
	"testing/quick"

	"cloudiq/internal/buffer"
	"cloudiq/internal/column"
	"cloudiq/internal/core"
	"cloudiq/internal/keygen"
	"cloudiq/internal/objstore"
	"cloudiq/internal/rfrb"
	"cloudiq/internal/table"
)

func ctxb() context.Context { return context.Background() }

func batchOf(t *testing.T, cols []table.ColumnDef, build func(b *table.Batch)) *table.Batch {
	if t != nil {
		t.Helper()
	}
	b := table.NewBatch(table.Schema{Cols: cols})
	build(b)
	return b
}

func intCol(name string) table.ColumnDef { return table.ColumnDef{Name: name, Typ: column.Int64} }
func fltCol(name string) table.ColumnDef { return table.ColumnDef{Name: name, Typ: column.Float64} }
func strCol(name string) table.ColumnDef { return table.ColumnDef{Name: name, Typ: column.String} }

func sampleBatch(t *testing.T) *table.Batch {
	return batchOf(t, []table.ColumnDef{intCol("id"), fltCol("price"), strCol("tag")}, func(b *table.Batch) {
		for i := 0; i < 6; i++ {
			b.Vecs[0].AppendInt(int64(i))
			b.Vecs[1].AppendFloat(float64(i) * 10)
			b.Vecs[2].AppendStr([]string{"red", "blue"}[i%2])
		}
	})
}

func TestExprArithmeticAndComparison(t *testing.T) {
	b := sampleBatch(t)
	v, err := Add(Col("id"), ConstI(100)).Eval(b)
	if err != nil || v.I64[3] != 103 {
		t.Fatalf("Add = %v, %v", v, err)
	}
	v, err = Mul(Col("price"), ConstF(2)).Eval(b)
	if err != nil || v.F64[2] != 40 {
		t.Fatalf("Mul = %v, %v", v, err)
	}
	v, err = Div(Col("price"), ConstI(2)).Eval(b) // mixed types promote
	if err != nil || v.F64[4] != 20 {
		t.Fatalf("Div = %v, %v", v, err)
	}
	v, err = Sub(Col("id"), ConstI(1)).Eval(b)
	if err != nil || v.I64[0] != -1 {
		t.Fatalf("Sub = %v, %v", v, err)
	}
	v, err = Ge(Col("id"), ConstI(4)).Eval(b)
	if err != nil || !reflect.DeepEqual(v.I64, []int64{0, 0, 0, 0, 1, 1}) {
		t.Fatalf("Ge = %v, %v", v.I64, err)
	}
	v, err = Eq(Col("tag"), ConstS("red")).Eval(b)
	if err != nil || !reflect.DeepEqual(v.I64, []int64{1, 0, 1, 0, 1, 0}) {
		t.Fatalf("Eq = %v", v.I64)
	}
	v, err = And(Lt(Col("id"), ConstI(4)), Ne(Col("tag"), ConstS("red"))).Eval(b)
	if err != nil || !reflect.DeepEqual(v.I64, []int64{0, 1, 0, 1, 0, 0}) {
		t.Fatalf("And = %v", v.I64)
	}
	v, err = Not(Or(Eq(Col("id"), ConstI(0)), Gt(Col("id"), ConstI(3)))).Eval(b)
	if err != nil || !reflect.DeepEqual(v.I64, []int64{0, 1, 1, 1, 0, 0}) {
		t.Fatalf("NotOr = %v", v.I64)
	}
	if _, err := Add(Col("tag"), ConstI(1)).Eval(b); err == nil {
		t.Fatal("string arithmetic accepted")
	}
	if _, err := Eq(Col("tag"), ConstI(1)).Eval(b); err == nil {
		t.Fatal("string/int comparison accepted")
	}
	if _, err := Col("ghost").Eval(b); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"PROMO BRUSHED", "PROMO%", true},
		{"STANDARD", "PROMO%", false},
		{"large brass bolt", "%brass%", true},
		{"forest green", "forest%", true},
		{"xspecialyrequestsz", "%special%requests%", true},
		{"specialrequests", "%special%requests%", true},
		{"requests special", "%special%requests%", false},
		{"exact", "exact", true},
		{"exac", "exact", false},
		{"MEDIUM POLISHED BRASS", "%BRASS", true},
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.want {
			t.Errorf("matchLike(%q, %q) = %v", c.s, c.p, got)
		}
	}
	b := sampleBatch(t)
	v, err := Like(Col("tag"), "%ed").Eval(b)
	if err != nil || v.I64[0] != 1 || v.I64[1] != 0 {
		t.Fatalf("Like = %v, %v", v.I64, err)
	}
	v, _ = NotLike(Col("tag"), "%ed").Eval(b)
	if v.I64[0] != 0 || v.I64[1] != 1 {
		t.Fatalf("NotLike = %v", v.I64)
	}
}

func TestInCaseSubstrYear(t *testing.T) {
	b := sampleBatch(t)
	v, err := InS(Col("tag"), "red", "green").Eval(b)
	if err != nil || v.I64[0] != 1 || v.I64[1] != 0 {
		t.Fatalf("InS = %v", v.I64)
	}
	v, err = Case(Eq(Col("tag"), ConstS("red")), Col("price"), ConstF(0)).Eval(b)
	if err != nil || v.F64[2] != 20 || v.F64[3] != 0 {
		t.Fatalf("Case = %v", v.F64)
	}
	v, err = Case(Eq(Col("id"), ConstI(1)), ConstI(7), ConstI(9)).Eval(b)
	if err != nil || v.I64[1] != 7 || v.I64[0] != 9 {
		t.Fatalf("int Case = %v", v.I64)
	}
	v, err = Substr(Col("tag"), 1, 2).Eval(b)
	if err != nil || v.Str[0] != "re" || v.Str[1] != "bl" {
		t.Fatalf("Substr = %v", v.Str)
	}
	days := column.DateToDays(1995, 6, 15)
	db := batchOf(t, []table.ColumnDef{intCol("d")}, func(b *table.Batch) { b.Vecs[0].AppendInt(days) })
	v, err = Year(Col("d")).Eval(db)
	if err != nil || v.I64[0] != 1995 {
		t.Fatalf("Year = %v", v.I64)
	}
}

func TestFilterProjectSortLimit(t *testing.T) {
	b := sampleBatch(t)
	f, err := FilterBatch(b, Ge(Col("id"), ConstI(2)))
	if err != nil || f.Rows() != 4 {
		t.Fatalf("filter = %d rows, %v", f.Rows(), err)
	}
	p, err := Project(f, []NamedExpr{
		{Name: "double", Expr: Mul(Col("price"), ConstF(2))},
		{Name: "tag", Expr: Col("tag")},
	})
	if err != nil || len(p.Vecs) != 2 || p.Vecs[0].F64[0] != 40 {
		t.Fatalf("project = %+v, %v", p, err)
	}
	s, err := Sort(b, []SortKey{{Col: "tag"}, {Col: "id", Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Col("tag").Str[0] != "blue" || s.Col("id").I64[0] != 5 {
		t.Fatalf("sort head = %v %v", s.Col("tag").Str, s.Col("id").I64)
	}
	l := Limit(s, 2)
	if l.Rows() != 2 {
		t.Fatalf("limit = %d", l.Rows())
	}
	if Limit(l, 10).Rows() != 2 {
		t.Fatal("limit beyond size changed batch")
	}
}

func TestHashJoinInner(t *testing.T) {
	orders := batchOf(t, []table.ColumnDef{intCol("o_custkey"), fltCol("o_total")}, func(b *table.Batch) {
		for _, o := range []struct {
			ck int64
			t  float64
		}{{1, 10}, {2, 20}, {1, 30}, {9, 40}} {
			b.Vecs[0].AppendInt(o.ck)
			b.Vecs[1].AppendFloat(o.t)
		}
	})
	custs := batchOf(t, []table.ColumnDef{intCol("c_custkey"), strCol("c_name")}, func(b *table.Batch) {
		b.Vecs[0].AppendInt(1)
		b.Vecs[1].AppendStr("alice")
		b.Vecs[0].AppendInt(2)
		b.Vecs[1].AppendStr("bob")
	})
	out, err := HashJoin(ctxb(), SliceSource(custs), []string{"c_custkey"}, SliceSource(orders), []string{"o_custkey"}, Inner)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 {
		t.Fatalf("inner join rows = %d", out.Rows())
	}
	// Probe columns first, then build columns; row for o_custkey=2 carries bob.
	for r := 0; r < out.Rows(); r++ {
		ck := out.Col("o_custkey").I64[r]
		name := out.Col("c_name").Str[r]
		if (ck == 1 && name != "alice") || (ck == 2 && name != "bob") {
			t.Fatalf("row %d: custkey %d name %s", r, ck, name)
		}
	}
}

func TestHashJoinLeftOuterSemiAnti(t *testing.T) {
	left := batchOf(t, []table.ColumnDef{intCol("k")}, func(b *table.Batch) {
		for _, v := range []int64{1, 2, 3} {
			b.Vecs[0].AppendInt(v)
		}
	})
	right := batchOf(t, []table.ColumnDef{intCol("rk"), strCol("val")}, func(b *table.Batch) {
		b.Vecs[0].AppendInt(2)
		b.Vecs[1].AppendStr("two")
	})
	lo, err := HashJoin(ctxb(), SliceSource(right), []string{"rk"}, SliceSource(left), []string{"k"}, LeftOuter)
	if err != nil || lo.Rows() != 3 {
		t.Fatalf("left outer rows = %d, %v", lo.Rows(), err)
	}
	for r := 0; r < 3; r++ {
		k := lo.Col("k").I64[r]
		val := lo.Col("val").Str[r]
		if (k == 2 && val != "two") || (k != 2 && val != "") {
			t.Fatalf("left outer row %d: k=%d val=%q", r, k, val)
		}
	}
	semi, err := HashJoin(ctxb(), SliceSource(right), []string{"rk"}, SliceSource(left), []string{"k"}, Semi)
	if err != nil || semi.Rows() != 1 || semi.Col("k").I64[0] != 2 {
		t.Fatalf("semi = %+v, %v", semi, err)
	}
	anti, err := HashJoin(ctxb(), SliceSource(right), []string{"rk"}, SliceSource(left), []string{"k"}, Anti)
	if err != nil || anti.Rows() != 2 {
		t.Fatalf("anti rows = %d, %v", anti.Rows(), err)
	}
}

func TestHashJoinMultiKeyAndDuplicates(t *testing.T) {
	build := batchOf(t, []table.ColumnDef{intCol("a"), strCol("b"), intCol("payload")}, func(b *table.Batch) {
		b.Vecs[0].AppendInt(1)
		b.Vecs[1].AppendStr("x")
		b.Vecs[2].AppendInt(100)
		b.Vecs[0].AppendInt(1)
		b.Vecs[1].AppendStr("x")
		b.Vecs[2].AppendInt(200)
	})
	probe := batchOf(t, []table.ColumnDef{intCol("pa"), strCol("pb")}, func(b *table.Batch) {
		b.Vecs[0].AppendInt(1)
		b.Vecs[1].AppendStr("x")
		b.Vecs[0].AppendInt(1)
		b.Vecs[1].AppendStr("y")
	})
	out, err := HashJoin(ctxb(), SliceSource(build), []string{"a", "b"}, SliceSource(probe), []string{"pa", "pb"}, Inner)
	if err != nil || out.Rows() != 2 {
		t.Fatalf("multi-key join rows = %d, %v", out.Rows(), err)
	}
}

func TestHashAggGlobalAndGrouped(t *testing.T) {
	b := sampleBatch(t) // ids 0..5, price = id*10, tags red/blue
	out, err := HashAgg(ctxb(), SliceSource(b), nil, []Agg{
		{Func: Count, As: "n"},
		{Func: Sum, Expr: Col("price"), As: "total"},
		{Func: Avg, Expr: Col("id"), As: "avg_id"},
		{Func: Min, Expr: Col("tag"), As: "min_tag"},
		{Func: Max, Expr: Col("id"), As: "max_id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 1 || out.Col("n").I64[0] != 6 || out.Col("total").F64[0] != 150 {
		t.Fatalf("global agg = %+v", out)
	}
	if out.Col("avg_id").F64[0] != 2.5 || out.Col("min_tag").Str[0] != "blue" || out.Col("max_id").I64[0] != 5 {
		t.Fatalf("global agg = %+v", out)
	}

	grouped, err := HashAgg(ctxb(), SliceSource(b), []string{"tag"}, []Agg{
		{Func: Count, As: "n"},
		{Func: Sum, Expr: Col("id"), As: "ids"},
	})
	if err != nil || grouped.Rows() != 2 {
		t.Fatalf("grouped = %+v, %v", grouped, err)
	}
	for r := 0; r < 2; r++ {
		tag := grouped.Col("tag").Str[r]
		ids := grouped.Col("ids").I64[r]
		if (tag == "red" && ids != 6) || (tag == "blue" && ids != 9) {
			t.Fatalf("group %s ids = %d", tag, ids)
		}
	}
}

func TestHashAggCountDistinctAndEmptyInput(t *testing.T) {
	b := sampleBatch(t)
	out, err := HashAgg(ctxb(), SliceSource(b), nil, []Agg{
		{Func: CountDistinct, Expr: Col("tag"), As: "tags"},
	})
	if err != nil || out.Col("tags").I64[0] != 2 {
		t.Fatalf("distinct = %+v, %v", out, err)
	}
	empty, err := HashAgg(ctxb(), SliceSource(), nil, []Agg{{Func: Count, As: "n"}})
	if err != nil || empty.Rows() != 1 || empty.Col("n").I64[0] != 0 {
		t.Fatalf("empty global agg = %+v, %v", empty, err)
	}
}

// end-to-end scan over a real stored table.
func TestScanWithZonePruningAndFilter(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	gen := keygen.NewGenerator(nil)
	client := keygen.NewClient(func(ctx context.Context, n uint64) (rfrb.Range, error) {
		return gen.Allocate(ctx, "n", n)
	})
	ds := core.NewCloud(core.CloudConfig{Name: "user", Store: store, Keys: client})
	pool := buffer.NewPool(buffer.Config{Capacity: 8 << 20})
	bm, _ := core.NewBlockmap(ds, 16)
	obj := pool.OpenObject(ds, bm, core.LockedSink(core.BitmapSink{RB: &rfrb.Bitmap{}, RF: &rfrb.Bitmap{}}), nil)
	tbl, err := table.Create("t", obj, table.Schema{Cols: []table.ColumnDef{intCol("id"), strCol("tag")}}, table.Options{SegRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	batch := table.NewBatch(tbl.Schema())
	for i := 0; i < 1000; i++ {
		batch.Vecs[0].AppendInt(int64(i))
		batch.Vecs[1].AppendStr([]string{"a", "b"}[i%2])
	}
	if err := tbl.Append(ctxb(), batch); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Commit(ctxb()); err != nil {
		t.Fatal(err)
	}

	// Zone predicate restricts to ids 250..349 => exactly one segment.
	src, err := Scan(tbl, []string{"id", "tag"}, ScanOptions{
		Zones:  []ZonePred{ZoneI("id", 250, 349)},
		Filter: And(Ge(Col("id"), ConstI(250)), Lt(Col("id"), ConstI(350))),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(ctxb(), src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 100 {
		t.Fatalf("rows = %d, want 100", out.Rows())
	}
	// Only segments 2 and 3 overlap [250,349]: at most 2 of 10 segments
	// read (2 columns each), plus meta/blockmap traffic.
	if gets := store.Metrics().Gets(); gets > 12 {
		t.Fatalf("scan issued %d GETs; zone pruning not effective", gets)
	}
	if _, err := Scan(tbl, []string{"nope"}, ScanOptions{}); err == nil {
		t.Fatal("scan of unknown column accepted")
	}
	if _, err := Scan(tbl, []string{"id"}, ScanOptions{Zones: []ZonePred{ZoneI("nope", 0, 1)}}); err == nil {
		t.Fatal("zone predicate on unknown column accepted")
	}
}

func TestZonePredVariants(t *testing.T) {
	zi := column.BuildZoneMap(&column.Vector{Typ: column.Int64, I64: []int64{5, 10}})
	zf := column.BuildZoneMap(&column.Vector{Typ: column.Float64, F64: []float64{1.5, 2.5}})
	zs := column.BuildZoneMap(&column.Vector{Typ: column.String, Str: []string{"b", "d"}})
	if !ZoneI("c", 7, 8).ok(zi) || ZoneI("c", 11, 20).ok(zi) {
		t.Fatal("ZoneI pruning wrong")
	}
	if !ZoneF("c", 2, 3).ok(zf) || ZoneF("c", 3, 4).ok(zf) {
		t.Fatal("ZoneF pruning wrong")
	}
	if !ZoneS("c", "c", "c").ok(zs) || ZoneS("c", "e", "f").ok(zs) {
		t.Fatal("ZoneS pruning wrong")
	}
}

func TestPropertyFilterMatchesManualScan(t *testing.T) {
	f := func(vals []int16, threshold int16) bool {
		b := batchOf(nil, []table.ColumnDef{intCol("x")}, func(b *table.Batch) {
			for _, v := range vals {
				b.Vecs[0].AppendInt(int64(v))
			}
		})
		out, err := FilterBatch(b, Gt(Col("x"), ConstI(int64(threshold))))
		if err != nil {
			return false
		}
		want := 0
		for _, v := range vals {
			if v > threshold {
				want++
			}
		}
		return out.Rows() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySortIsOrdered(t *testing.T) {
	f := func(vals []int32) bool {
		b := batchOf(nil, []table.ColumnDef{intCol("x")}, func(b *table.Batch) {
			for _, v := range vals {
				b.Vecs[0].AppendInt(int64(v))
			}
		})
		out, err := Sort(b, []SortKey{{Col: "x"}})
		if err != nil {
			return false
		}
		got := out.Col("x").I64
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				return false
			}
		}
		return len(got) == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
