package exec

// Differential tests: random expression trees and aggregations evaluated by
// the vectorized operators are checked against an independent, naive
// row-at-a-time reference evaluator. The reference shares no code with the
// engine (its own LIKE matcher, its own type-promotion logic, its own
// accumulators); any divergence is a bug in one of the two, and the failing
// trial prints the seed plus the offending tree.

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"cloudiq/internal/column"
	"cloudiq/internal/mt"
	"cloudiq/internal/table"
)

// --- random data -----------------------------------------------------------

var diffVocab = []string{"alpha", "beta", "gamma", "delta", "epsilon", "", "alp", "betamax"}

type diffRow struct {
	a, b int64
	f, g float64
	s, t string
}

func diffBatch(rng *mt.Source, rows int) (*table.Batch, []diffRow) {
	b := table.NewBatch(table.Schema{Cols: []table.ColumnDef{
		intCol("a"), intCol("b"), fltCol("f"), fltCol("g"), strCol("s"), strCol("t"),
	}})
	data := make([]diffRow, rows)
	for i := range data {
		r := diffRow{
			a: int64(rng.Uint64()%21) - 10,
			b: int64(rng.Uint64()%201) - 100,
			f: float64(int64(rng.Uint64()%2001)-1000) / 8,
			g: float64(int64(rng.Uint64()%41)-20) * 2.5,
			s: diffVocab[rng.Uint64()%uint64(len(diffVocab))],
			t: diffVocab[rng.Uint64()%uint64(len(diffVocab))],
		}
		data[i] = r
		b.Vecs[0].AppendInt(r.a)
		b.Vecs[1].AppendInt(r.b)
		b.Vecs[2].AppendFloat(r.f)
		b.Vecs[3].AppendFloat(r.g)
		b.Vecs[4].AppendStr(r.s)
		b.Vecs[5].AppendStr(r.t)
	}
	return b, data
}

// --- reference values ------------------------------------------------------

// dval is the reference evaluator's numeric value: an int64 until any float
// enters the computation, mirroring the engine's promotion rule.
type dval struct {
	isF bool
	i   int64
	f   float64
}

func di(v int64) dval   { return dval{i: v, f: float64(v)} }
func df(v float64) dval { return dval{isF: true, f: v} }

func (v dval) asF() float64 { return v.f }

func sameVal(x, y dval) bool {
	if x.isF != y.isF {
		return false
	}
	if !x.isF {
		return x.i == y.i
	}
	if math.IsNaN(x.f) && math.IsNaN(y.f) {
		return true
	}
	return x.f == y.f
}

// refLike is an independent LIKE matcher ('%' wildcards only): recursive
// backtracking instead of the engine's split/scan.
func refLike(s, pattern string) bool {
	if pattern == "" {
		return s == ""
	}
	if pattern[0] == '%' {
		for i := 0; i <= len(s); i++ {
			if refLike(s[i:], pattern[1:]) {
				return true
			}
		}
		return false
	}
	if s == "" || s[0] != pattern[0] {
		return false
	}
	return refLike(s[1:], pattern[1:])
}

func refSubstr(s string, start, n int) string {
	lo := start - 1
	if lo < 0 {
		lo = 0
	}
	hi := lo + n
	if lo > len(s) {
		lo = len(s)
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// --- random expression trees ----------------------------------------------

// dnode is a random expression: it compiles to an engine Expr and evaluates
// itself row-wise through the reference rules.
type dnode struct {
	kind string
	kids []*dnode
	col  string
	ci   int64
	cf   float64
	cs   string
	strs []string
	op   int // comparison operator index
	sub  [2]int
}

var cmpNames = []string{"eq", "ne", "lt", "le", "gt", "ge"}

func (n *dnode) expr() Expr {
	k := func(i int) Expr { return n.kids[i].expr() }
	switch n.kind {
	case "colI", "colF", "colS":
		return Col(n.col)
	case "ci":
		return ConstI(n.ci)
	case "cf":
		return ConstF(n.cf)
	case "cs":
		return ConstS(n.cs)
	case "add":
		return Add(k(0), k(1))
	case "sub":
		return Sub(k(0), k(1))
	case "mul":
		return Mul(k(0), k(1))
	case "div":
		return Div(k(0), k(1))
	case "case":
		return Case(k(0), k(1), k(2))
	case "and":
		return And(k(0), k(1))
	case "or":
		return Or(k(0), k(1))
	case "not":
		return Not(k(0))
	case "like":
		return Like(k(0), n.cs)
	case "notlike":
		return NotLike(k(0), n.cs)
	case "in":
		return InS(k(0), n.strs...)
	case "substr":
		return Substr(k(0), n.sub[0], n.sub[1])
	case "cmp":
		ops := []func(a, b Expr) Expr{Eq, Ne, Lt, Le, Gt, Ge}
		return ops[n.op](k(0), k(1))
	}
	panic("unknown kind " + n.kind)
}

func (n *dnode) String() string {
	var parts []string
	for _, k := range n.kids {
		parts = append(parts, k.String())
	}
	tag := n.kind
	switch n.kind {
	case "colI", "colF", "colS":
		tag = n.col
	case "ci":
		tag = fmt.Sprint(n.ci)
	case "cf":
		tag = fmt.Sprint(n.cf)
	case "cs", "like", "notlike":
		tag = fmt.Sprintf("%s(%q)", n.kind, n.cs)
	case "in":
		tag = fmt.Sprintf("in%v", n.strs)
	case "cmp":
		tag = cmpNames[n.op]
	}
	if len(parts) == 0 {
		return tag
	}
	return tag + "(" + strings.Join(parts, ",") + ")"
}

func (n *dnode) evalNum(r diffRow) dval {
	switch n.kind {
	case "colI":
		if n.col == "a" {
			return di(r.a)
		}
		return di(r.b)
	case "colF":
		if n.col == "f" {
			return df(r.f)
		}
		return df(r.g)
	case "ci":
		return di(n.ci)
	case "cf":
		return df(n.cf)
	case "add", "sub", "mul":
		x, y := n.kids[0].evalNum(r), n.kids[1].evalNum(r)
		if !x.isF && !y.isF {
			switch n.kind {
			case "add":
				return di(x.i + y.i)
			case "sub":
				return di(x.i - y.i)
			default:
				return di(x.i * y.i)
			}
		}
		switch n.kind {
		case "add":
			return df(x.asF() + y.asF())
		case "sub":
			return df(x.asF() - y.asF())
		default:
			return df(x.asF() * y.asF())
		}
	case "div":
		// Division always produces a float, whatever the operand types.
		return df(n.kids[0].evalNum(r).asF() / n.kids[1].evalNum(r).asF())
	case "case":
		t, e := n.kids[1].evalNum(r), n.kids[2].evalNum(r)
		picked := e
		if n.kids[0].evalBool(r) {
			picked = t
		}
		if t.isF || e.isF {
			return df(picked.asF()) // the engine promotes both branches
		}
		return picked
	}
	panic("not numeric: " + n.kind)
}

func (n *dnode) evalStr(r diffRow) string {
	switch n.kind {
	case "colS":
		if n.col == "s" {
			return r.s
		}
		return r.t
	case "cs":
		return n.cs
	case "substr":
		return refSubstr(n.kids[0].evalStr(r), n.sub[0], n.sub[1])
	}
	panic("not string: " + n.kind)
}

func (n *dnode) evalBool(r diffRow) bool {
	switch n.kind {
	case "and":
		return n.kids[0].evalBool(r) && n.kids[1].evalBool(r)
	case "or":
		return n.kids[0].evalBool(r) || n.kids[1].evalBool(r)
	case "not":
		return !n.kids[0].evalBool(r)
	case "like":
		return refLike(n.kids[0].evalStr(r), n.cs)
	case "notlike":
		return !refLike(n.kids[0].evalStr(r), n.cs)
	case "in":
		s := n.kids[0].evalStr(r)
		for _, v := range n.strs {
			if v == s {
				return true
			}
		}
		return false
	case "cmp":
		var c int
		if n.kids[0].kind == "colS" || n.kids[0].kind == "cs" || n.kids[0].kind == "substr" {
			c = strings.Compare(n.kids[0].evalStr(r), n.kids[1].evalStr(r))
		} else {
			x, y := n.kids[0].evalNum(r), n.kids[1].evalNum(r)
			if !x.isF && !y.isF {
				if x.i < y.i {
					c = -1
				} else if x.i > y.i {
					c = 1
				}
			} else {
				if x.asF() < y.asF() {
					c = -1
				} else if x.asF() > y.asF() {
					c = 1
				}
			}
		}
		switch cmpNames[n.op] {
		case "eq":
			return c == 0
		case "ne":
			return c != 0
		case "lt":
			return c < 0
		case "le":
			return c <= 0
		case "gt":
			return c > 0
		default:
			return c >= 0
		}
	}
	panic("not boolean: " + n.kind)
}

// --- generators ------------------------------------------------------------

type diffGen struct{ rng *mt.Source }

func (g *diffGen) pick(n int) int { return int(g.rng.Uint64() % uint64(n)) }

func (g *diffGen) numExpr(depth int) *dnode {
	if depth <= 0 || g.pick(3) == 0 {
		switch g.pick(6) {
		case 0:
			return &dnode{kind: "colI", col: "a"}
		case 1:
			return &dnode{kind: "colI", col: "b"}
		case 2:
			return &dnode{kind: "colF", col: "f"}
		case 3:
			return &dnode{kind: "colF", col: "g"}
		case 4:
			return &dnode{kind: "ci", ci: int64(g.pick(11)) - 5}
		default:
			return &dnode{kind: "cf", cf: float64(g.pick(17)-8) / 4}
		}
	}
	switch g.pick(5) {
	case 0:
		return &dnode{kind: "add", kids: []*dnode{g.numExpr(depth - 1), g.numExpr(depth - 1)}}
	case 1:
		return &dnode{kind: "sub", kids: []*dnode{g.numExpr(depth - 1), g.numExpr(depth - 1)}}
	case 2:
		return &dnode{kind: "mul", kids: []*dnode{g.numExpr(depth - 1), g.numExpr(depth - 1)}}
	case 3:
		// Non-zero constant denominators keep the reference honest:
		// integer division by zero has no single obvious semantics.
		den := &dnode{kind: "ci", ci: int64(g.pick(7)) + 1}
		if g.pick(2) == 0 {
			den = &dnode{kind: "cf", cf: float64(g.pick(9)+1) / 2}
		}
		return &dnode{kind: "div", kids: []*dnode{g.numExpr(depth - 1), den}}
	default:
		return &dnode{kind: "case", kids: []*dnode{g.boolExpr(depth - 1), g.numExpr(depth - 1), g.numExpr(depth - 1)}}
	}
}

func (g *diffGen) strExpr(depth int) *dnode {
	switch g.pick(4) {
	case 0:
		return &dnode{kind: "colS", col: "s"}
	case 1:
		return &dnode{kind: "colS", col: "t"}
	case 2:
		return &dnode{kind: "cs", cs: diffVocab[g.pick(len(diffVocab))]}
	default:
		if depth <= 0 {
			return &dnode{kind: "colS", col: "s"}
		}
		return &dnode{kind: "substr", kids: []*dnode{g.strExpr(depth - 1)}, sub: [2]int{g.pick(6), g.pick(5)}}
	}
}

var diffPatterns = []string{"%", "alp%", "%ta", "%et%", "%a%a%", "alpha", "%lp%a", ""}

func (g *diffGen) boolExpr(depth int) *dnode {
	if depth <= 0 || g.pick(4) == 0 {
		switch g.pick(4) {
		case 0:
			return &dnode{kind: "cmp", op: g.pick(6), kids: []*dnode{g.numExpr(0), g.numExpr(0)}}
		case 1:
			return &dnode{kind: "like", cs: diffPatterns[g.pick(len(diffPatterns))], kids: []*dnode{g.strExpr(1)}}
		case 2:
			n := g.pick(3) + 1
			var vals []string
			for i := 0; i < n; i++ {
				vals = append(vals, diffVocab[g.pick(len(diffVocab))])
			}
			return &dnode{kind: "in", strs: vals, kids: []*dnode{g.strExpr(0)}}
		default:
			return &dnode{kind: "cmp", op: g.pick(6), kids: []*dnode{g.strExpr(1), g.strExpr(1)}}
		}
	}
	switch g.pick(5) {
	case 0:
		return &dnode{kind: "and", kids: []*dnode{g.boolExpr(depth - 1), g.boolExpr(depth - 1)}}
	case 1:
		return &dnode{kind: "or", kids: []*dnode{g.boolExpr(depth - 1), g.boolExpr(depth - 1)}}
	case 2:
		return &dnode{kind: "not", kids: []*dnode{g.boolExpr(depth - 1)}}
	case 3:
		return &dnode{kind: "notlike", cs: diffPatterns[g.pick(len(diffPatterns))], kids: []*dnode{g.strExpr(1)}}
	default:
		return &dnode{kind: "cmp", op: g.pick(6), kids: []*dnode{g.numExpr(depth - 1), g.numExpr(depth - 1)}}
	}
}

// --- the differential tests ------------------------------------------------

func diffTrials(t *testing.T) int {
	if testing.Short() {
		return 25
	}
	return 150
}

func TestDifferentialFilter(t *testing.T) {
	rng := mt.New(0xD1FF)
	g := &diffGen{rng: rng}
	for trial := 0; trial < diffTrials(t); trial++ {
		pred := g.boolExpr(4)
		batch, rows := diffBatch(rng, int(rng.Uint64()%120))
		got, err := FilterBatch(batch, pred.expr())
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, pred, err)
		}
		var want []int64
		for _, r := range rows {
			if pred.evalBool(r) {
				want = append(want, r.a)
			}
		}
		if got.Rows() != len(want) {
			t.Fatalf("trial %d: %s: filter kept %d rows, reference kept %d",
				trial, pred, got.Rows(), len(want))
		}
		for i, v := range want {
			if got.Vecs[0].I64[i] != v {
				t.Fatalf("trial %d: %s: row %d col a = %d, want %d",
					trial, pred, i, got.Vecs[0].I64[i], v)
			}
		}
	}
}

func TestDifferentialProject(t *testing.T) {
	rng := mt.New(0xD1FF + 1)
	g := &diffGen{rng: rng}
	for trial := 0; trial < diffTrials(t); trial++ {
		e := g.numExpr(4)
		batch, rows := diffBatch(rng, int(rng.Uint64()%80)+1)
		out, err := Project(batch, []NamedExpr{{Name: "x", Expr: e.expr()}})
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, e, err)
		}
		v := out.Vecs[0]
		for i, r := range rows {
			want := e.evalNum(r)
			var got dval
			if v.Typ == column.Int64 {
				got = di(v.I64[i])
			} else {
				got = df(v.F64[i])
			}
			if !sameVal(got, want) {
				t.Fatalf("trial %d: %s: row %d = %+v, want %+v", trial, e, i, got, want)
			}
		}
	}
}

// TestDifferentialHashAgg compares grouped and global aggregation against
// naive per-group accumulators. Group output order is unspecified, so the
// comparison is keyed by group value, not position.
func TestDifferentialHashAgg(t *testing.T) {
	rng := mt.New(0xD1FF + 2)
	g := &diffGen{rng: rng}
	trials := diffTrials(t) / 5
	for trial := 0; trial < trials; trial++ {
		e := g.numExpr(3)
		batch, rows := diffBatch(rng, int(rng.Uint64()%150))
		aggs := []Agg{
			{Func: Count, As: "cnt"},
			{Func: Sum, Expr: e.expr(), As: "sum"},
			{Func: Avg, Expr: e.expr(), As: "avg"},
			{Func: Min, Expr: e.expr(), As: "min"},
			{Func: Max, Expr: e.expr(), As: "max"},
			{Func: CountDistinct, Expr: Col("s"), As: "dist"},
		}
		groupBy := []string{"s"}
		if trial%3 == 0 {
			groupBy = nil // global aggregate
		}
		out, err := HashAgg(ctxb(), SliceSource(batch), groupBy, aggs)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, e, err)
		}

		// Reference accumulation, row-at-a-time in input order (matching
		// the engine's floating-point accumulation order).
		type acc struct {
			cnt      int64
			sumI     int64
			sumF     float64
			min, max dval
			seen     bool
			dist     map[string]struct{}
			isF      bool
		}
		ref := map[string]*acc{}
		for _, r := range rows {
			key := ""
			if groupBy != nil {
				key = r.s
			}
			a := ref[key]
			if a == nil {
				a = &acc{dist: map[string]struct{}{}}
				ref[key] = a
			}
			v := e.evalNum(r)
			a.cnt++
			a.sumI += v.i
			a.sumF += v.asF()
			if v.isF {
				a.isF = true
			}
			if !a.seen || lessVal(v, a.min) {
				a.min = v
			}
			if !a.seen || lessVal(a.max, v) {
				a.max = v
			}
			a.seen = true
			a.dist[r.s] = struct{}{}
		}
		if groupBy == nil && len(ref) == 0 {
			ref[""] = &acc{dist: map[string]struct{}{}}
		}

		if out.Rows() != len(ref) {
			t.Fatalf("trial %d: %s: %d groups, want %d", trial, e, out.Rows(), len(ref))
		}
		col := func(name string) *column.Vector {
			for i, c := range out.Schema.Cols {
				if c.Name == name {
					return out.Vecs[i]
				}
			}
			t.Fatalf("no column %s", name)
			return nil
		}
		for i := 0; i < out.Rows(); i++ {
			key := ""
			if groupBy != nil {
				key = col("s").Str[i]
			}
			a := ref[key]
			if a == nil {
				t.Fatalf("trial %d: %s: unexpected group %q", trial, e, key)
			}
			if got := col("cnt").I64[i]; got != a.cnt {
				t.Fatalf("trial %d: %s: group %q count = %d, want %d", trial, e, key, got, a.cnt)
			}
			if got := col("dist").I64[i]; got != int64(len(a.dist)) {
				t.Fatalf("trial %d: %s: group %q distinct = %d, want %d", trial, e, key, got, len(a.dist))
			}
			wantSum, wantMin, wantMax := df(a.sumF), a.min, a.max
			if !a.isF {
				wantSum = di(a.sumI)
			}
			check := func(name string, want dval) {
				v := col(name)
				var got dval
				if v.Typ == column.Int64 {
					got = di(v.I64[i])
				} else {
					got = df(v.F64[i])
				}
				if a.cnt == 0 {
					return // empty global group: engine emits zero values
				}
				if !sameVal(got, want) {
					t.Fatalf("trial %d: %s: group %q %s = %+v, want %+v", trial, e, key, name, got, want)
				}
			}
			check("sum", wantSum)
			check("min", wantMin)
			check("max", wantMax)
			if a.cnt > 0 {
				wantAvg := a.sumF / float64(a.cnt)
				if got := col("avg").F64[i]; got != wantAvg && !(math.IsNaN(got) && math.IsNaN(wantAvg)) {
					t.Fatalf("trial %d: %s: group %q avg = %v, want %v", trial, e, key, got, wantAvg)
				}
			}
		}
	}
}

func lessVal(x, y dval) bool {
	if !x.isF && !y.isF {
		return x.i < y.i
	}
	return x.asF() < y.asF()
}
