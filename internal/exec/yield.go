package exec

import "context"

// YieldFunc is a cooperative scheduling point. The query scheduler
// (internal/sched) installs one on the context of every query it runs; scans
// call it between segments, so a long scan periodically offers its reader
// slot back to the scheduler and a burst of cheap high-priority queries can
// overtake it. Returning a non-nil error aborts the operator (the query was
// cancelled or its reader crashed).
type YieldFunc func(ctx context.Context) error

type yieldKey struct{}

// WithYield installs a yield point on the context.
func WithYield(ctx context.Context, f YieldFunc) context.Context {
	return context.WithValue(ctx, yieldKey{}, f)
}

// YieldPoint invokes the context's yield point, if any. Without one it
// degrades to a cancellation check, so every operator that yields is also
// promptly cancellable.
func YieldPoint(ctx context.Context) error {
	if f, ok := ctx.Value(yieldKey{}).(YieldFunc); ok && f != nil {
		return f(ctx)
	}
	return ctx.Err()
}
