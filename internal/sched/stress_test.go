package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"cloudiq/internal/exec"
)

// TestStressConcurrentFleet hammers the scheduler from 8 tenant goroutines —
// 500 queries each in full mode — against a 3-reader fleet, under the race
// detector in CI. Afterwards the conservation ledger must balance to the
// query: submitted = admitted + rejected, every admitted query terminated
// exactly once, and tenants whose submissions were all rejected were charged
// zero tokens.
func TestStressConcurrentFleet(t *testing.T) {
	const tenants = 8
	perTenant := 500
	if testing.Short() {
		perTenant = 60
	}

	s := New(Config{})
	for i := 0; i < tenants; i++ {
		cfg := TenantConfig{
			Name:        fmt.Sprintf("t%d", i),
			Weight:      1 + i%4,
			QueueBudget: 16,
		}
		if err := s.AddTenant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.AddReader(fmt.Sprintf("r%d", i), 4); err != nil {
			t.Fatal(err)
		}
	}

	var completed, failed, rejected, cancelled int64
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			for j := 0; j < perTenant; j++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if j%17 == 0 {
					// A slice of queries race a cancellation against their
					// own dispatch; either outcome must keep the ledger.
					ctx, cancel = context.WithCancel(ctx)
				}
				lane := Lane(j % int(NumLanes))
				err := s.Run(ctx, name, lane, func(ctx context.Context, reader string) error {
					if reader == "" {
						t.Error("dispatched with no reader")
					}
					if cancel != nil {
						cancel()
					}
					for k := 0; k < 3; k++ {
						if err := exec.YieldPoint(ctx); err != nil {
							return err
						}
					}
					if j%97 == 0 {
						return errors.New("synthetic query failure")
					}
					return nil
				})
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					atomic.AddInt64(&completed, 1)
				case errors.Is(err, ErrRejected):
					atomic.AddInt64(&rejected, 1)
				case errors.Is(err, context.Canceled):
					atomic.AddInt64(&cancelled, 1)
				default:
					atomic.AddInt64(&failed, 1)
				}
			}
		}(i)
	}
	wg.Wait()

	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	n := s.Counters()
	total := int64(tenants * perTenant)
	if n.Submitted != total {
		t.Fatalf("submitted %d, want %d", n.Submitted, total)
	}
	if n.Queued != 0 || n.Running != 0 {
		t.Fatalf("queries left behind: %+v", n)
	}
	if n.Completed != completed {
		t.Fatalf("ledger completed=%d, callers observed %d", n.Completed, completed)
	}
	if n.Rejected != rejected {
		t.Fatalf("ledger rejected=%d, callers observed %d", n.Rejected, rejected)
	}
	// A cancellation that races its own dispatch lands as Failed (the slot
	// was granted and returned) or Cancelled (still queued); the caller sees
	// context.Canceled either way. Completion errors land as Failed too.
	if n.Failed+n.Cancelled != failed+cancelled {
		t.Fatalf("ledger failed+cancelled=%d+%d, callers observed %d+%d",
			n.Failed, n.Cancelled, failed, cancelled)
	}
	if n.Admitted != n.Completed+n.Cancelled+n.Failed {
		t.Fatalf("admitted %d not conserved: %+v", n.Admitted, n)
	}
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("t%d", i)
		if got := s.ChargedTokens(name); got < 0 {
			t.Fatalf("%s charged negative tokens %s", name, got)
		}
	}

}
