package sched

import (
	"context"
	"sync"
	"time"

	"cloudiq/internal/exec"
	"cloudiq/internal/faultinject"
	"cloudiq/internal/iomodel"
	"cloudiq/internal/trace"
)

// Config parameterizes a Scheduler.
type Config struct {
	// Clock supplies the scheduling clock. The experiment harness wires
	// the simulated clock (iomodel.Scale.Charged) so queue waits are
	// simulated time; nil falls back to a monotonic internal counter.
	Clock func() time.Duration
	// Faults arms the admission-drop (SchedAdmit) and reader-stall
	// (SchedStall) sites. Nil means no injected faults.
	Faults *faultinject.Plan
	// Scale, when non-nil, charges injected reader stalls as simulated
	// time (a stalled reader really does serve later).
	Scale *iomodel.Scale
	// StallUnit converts a SchedStall lag draw to simulated time
	// (default 1ms per unit).
	StallUnit time.Duration
}

// grant delivers a dispatch decision to a waiting query goroutine.
type grant struct {
	reader string
	stall  time.Duration
}

// Scheduler is the concurrent shell around Core: many goroutines submit
// queries; admission, queueing, fairness and reader placement happen under
// one lock; dispatched queries run on their callers' goroutines with a
// cooperative yield point installed on the context.
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	core    *Core
	waiters map[uint64]chan grant

	faultRejected int64
	laneAdmitted  [NumLanes]int64
	laneRejected  [NumLanes]int64
	laneWaits     [NumLanes][]time.Duration
}

// New builds a Scheduler.
func New(cfg Config) *Scheduler {
	if cfg.StallUnit <= 0 {
		cfg.StallUnit = time.Millisecond
	}
	return &Scheduler{
		cfg:     cfg,
		core:    NewCore(cfg.Clock),
		waiters: make(map[uint64]chan grant),
	}
}

// AddTenant registers a tenant.
func (s *Scheduler) AddTenant(cfg TenantConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.AddTenant(cfg)
}

// AddReader registers a reader node and dispatches any waiting work to it.
func (s *Scheduler) AddReader(name string, slots int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.core.AddReader(name, slots); err != nil {
		return err
	}
	s.pumpLocked()
	return nil
}

// DrainReader starts a graceful drain of a reader: no new dispatches land on
// it, running queries finish (or unpin at their next yield), and queued
// queries pinned to it re-place on the rest of the fleet immediately. The
// return value reports whether the reader was idle and left at once.
func (s *Scheduler) DrainReader(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	gone := s.core.DrainReader(name)
	s.pumpLocked() // released queries place on the surviving fleet
	return gone
}

// RemoveReader drops a reader abruptly (a crash). Queries running on it are
// failed — their goroutines observe the terminal state when fn returns — and
// queued queries pinned to it re-place on the surviving fleet. It returns the
// number of failed victims.
func (s *Scheduler) RemoveReader(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	victims := s.core.RemoveReader(name)
	for _, q := range victims {
		_ = s.core.Complete(q, false)
	}
	s.pumpLocked()
	return len(victims)
}

// Readers returns the current reader names (draining ones included).
func (s *Scheduler) Readers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Readers()
}

// Load takes the autoscaler's load snapshot.
func (s *Scheduler) Load() LoadStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Load()
}

// pumpLocked drains the dispatch loop, handing each dispatched query to its
// waiting goroutine. Reader-stall lags are drawn here, in dispatch order, so
// a seeded plan yields a deterministic stall sequence.
func (s *Scheduler) pumpLocked() {
	for {
		q, ok := s.core.Dispatch()
		if !ok {
			return
		}
		g := grant{reader: q.Reader}
		if lag := s.cfg.Faults.LagAt(faultinject.SchedStall, q.Reader); lag > 0 {
			g.stall = time.Duration(lag) * s.cfg.StallUnit
		}
		if ch, ok := s.waiters[q.ID]; ok {
			ch <- g // buffered: never blocks the pump
		}
	}
}

// Run submits a query for the tenant on the lane, waits for admission and
// dispatch, then executes fn on the assigned reader with a yield point
// installed on the context. It returns fn's error, a *Rejection (matching
// errors.Is(err, ErrRejected)) under backpressure, or ctx.Err() if the
// query was cancelled while queued.
//
// Every admitted query terminates exactly once: completed (fn returned
// nil), failed (fn errored) or cancelled (context done before dispatch).
func (s *Scheduler) Run(ctx context.Context, tenant string, lane Lane, fn func(ctx context.Context, reader string) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// Injected admission drop: the request is shed before it reaches the
	// queue, exactly like an overflow rejection (and charged no tokens).
	if err := s.cfg.Faults.Check(faultinject.SchedAdmit, tenant); err != nil {
		s.mu.Lock()
		s.faultRejected++
		if lane >= 0 && lane < NumLanes {
			s.laneRejected[lane]++
		}
		s.mu.Unlock()
		return &Rejection{Tenant: tenant, Lane: lane, Reason: "fault", RetryAfter: 10 * time.Millisecond}
	}

	ctx, sp := trace.Start(ctx, "sched.query",
		trace.String("tenant", tenant), trace.String("lane", lane.String()))
	defer sp.End()

	s.mu.Lock()
	q, rej := s.core.Submit(tenant, lane)
	if rej != nil {
		if lane >= 0 && lane < NumLanes {
			s.laneRejected[lane]++
		}
		s.mu.Unlock()
		sp.SetAttr("rejected", rej.Reason)
		return rej
	}
	s.laneAdmitted[q.Lane]++
	ch := make(chan grant, 1)
	s.waiters[q.ID] = ch
	s.pumpLocked()
	s.mu.Unlock()

	g, err := s.await(ctx, q, ch)
	if err != nil {
		sp.SetAttr("cancelled", err.Error())
		return err
	}
	sp.AddInt("queue_ns", int64(q.FirstWait))
	sp.AddInt("queue_depth", int64(q.DepthAtSubmit))
	sp.SetAttr("reader", g.reader)
	s.mu.Lock()
	s.laneWaits[q.Lane] = append(s.laneWaits[q.Lane], q.FirstWait)
	s.mu.Unlock()
	if g.stall > 0 {
		sp.AddInt("stall_ns", int64(g.stall))
		s.stall(g.stall)
	}

	runErr := fn(exec.WithYield(ctx, s.yieldFunc(q, ch)), q.Reader)
	s.mu.Lock()
	delete(s.waiters, q.ID)
	if q.State == Running {
		err = s.core.Complete(q, runErr == nil)
	} else {
		err = nil // cancelled at a yield point; already terminal
	}
	s.pumpLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if runErr != nil {
		sp.SetAttr("err", runErr.Error())
	}
	return runErr
}

// await blocks until the query is granted a reader or the context ends.
// On cancellation it resolves the submit/dispatch race under the lock: a
// still-queued query is cancelled; one that was granted concurrently is
// completed as failed so its slot frees.
func (s *Scheduler) await(ctx context.Context, q *Query, ch chan grant) (grant, error) {
	select {
	case g := <-ch:
		return g, nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case g := <-ch:
		// The grant raced the cancellation: the query holds a slot; give
		// it back without running anything.
		_ = g
		_ = s.core.Complete(q, false)
	default:
		_ = s.core.Cancel(q)
		delete(s.waiters, q.ID)
	}
	s.pumpLocked()
	return grant{}, ctx.Err()
}

// stall blocks for an injected reader stall, charging it as simulated time
// when a scale is wired (a stalled reader's time really passes).
func (s *Scheduler) stall(d time.Duration) {
	if s.cfg.Scale != nil {
		s.cfg.Scale.Sleep(d)
		return
	}
	time.Sleep(d)
}

// yieldFunc is the cooperative scheduling point installed on every running
// query's context. When higher-priority or same-share work is waiting and
// no slot is free, the query releases its slot, requeues at the front of
// its lane (pinned to its reader — its open scans hold reader state) and
// blocks until redispatched.
func (s *Scheduler) yieldFunc(q *Query, ch chan grant) exec.YieldFunc {
	return func(ctx context.Context) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		if !s.core.ShouldYield(q) {
			s.mu.Unlock()
			return nil
		}
		if err := s.core.Requeue(q); err != nil {
			s.mu.Unlock()
			return nil
		}
		s.pumpLocked()
		s.mu.Unlock()
		g, err := s.await(ctx, q, ch)
		if err != nil {
			return err
		}
		if g.stall > 0 {
			s.stall(g.stall)
		}
		return nil
	}
}

// Counters returns the core's conservation ledger.
func (s *Scheduler) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Counters()
}

// FaultRejected reports admissions dropped by the SchedAdmit fault site
// (they never reach the core's ledger).
func (s *Scheduler) FaultRejected() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faultRejected
}

// Dispatches reports a tenant's dispatch count.
func (s *Scheduler) Dispatches(tenant string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Dispatches(tenant)
}

// ChargedTokens reports the simulated service time debited from a tenant.
func (s *Scheduler) ChargedTokens(tenant string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.ChargedTokens(tenant)
}

// LaneStats is one lane's admission and queue-wait record.
type LaneStats struct {
	Lane     Lane
	Admitted int64
	Rejected int64
	// Waits holds each admitted query's first-dispatch queue wait.
	Waits []time.Duration
}

// Lanes returns per-lane admission counts and queue waits (copies).
func (s *Scheduler) Lanes() [NumLanes]LaneStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [NumLanes]LaneStats
	for l := 0; l < int(NumLanes); l++ {
		out[l] = LaneStats{
			Lane:     Lane(l),
			Admitted: s.laneAdmitted[l],
			Rejected: s.laneRejected[l],
			Waits:    append([]time.Duration(nil), s.laneWaits[l]...),
		}
	}
	return out
}

// CheckConservation audits the ledger; see Core.CheckConservation.
func (s *Scheduler) CheckConservation() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.CheckConservation()
}
