package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Property tests for the deterministic core: work conservation, weighted
// fairness, starvation freedom, strict lanes, and ledger conservation, driven
// by seeded random op sequences that shrink on failure.
// ---------------------------------------------------------------------------

const (
	opSubmit = iota
	opDispatch
	opComplete
	opFail
	opCancel
	opRequeue
	opDrain
	numOpKinds
)

type op struct {
	Kind int
	A, B int // op-dependent selectors, resolved modulo live state at replay
}

func (o op) String() string {
	names := []string{"submit", "dispatch", "complete", "fail", "cancel", "requeue", "drain"}
	return fmt.Sprintf("%s(%d,%d)", names[o.Kind], o.A, o.B)
}

type scenario struct {
	Tenants []TenantConfig
	Slots   []int // reader slot counts
	Ops     []op
}

func genScenario(rng *rand.Rand) scenario {
	var sc scenario
	nt := 1 + rng.Intn(4)
	for i := 0; i < nt; i++ {
		cfg := TenantConfig{
			Name:        fmt.Sprintf("t%d", i),
			Weight:      1 + rng.Intn(5),
			QueueBudget: 1 + rng.Intn(8),
		}
		if rng.Intn(3) == 0 {
			cfg.TokenRate = 0.5 + rng.Float64()
			cfg.TokenBurst = time.Duration(1+rng.Intn(50)) * time.Millisecond
		}
		sc.Tenants = append(sc.Tenants, cfg)
	}
	nr := 1 + rng.Intn(3)
	for i := 0; i < nr; i++ {
		sc.Slots = append(sc.Slots, 1+rng.Intn(4))
	}
	nops := 20 + rng.Intn(200)
	for i := 0; i < nops; i++ {
		sc.Ops = append(sc.Ops, op{Kind: rng.Intn(numOpKinds), A: rng.Int(), B: rng.Int()})
	}
	return sc
}

// dispatchableHead returns a queued head-of-line query that has an eligible
// reader, or nil. After a drain, a non-nil result is a work-conservation
// violation: the scheduler left runnable work idle.
func dispatchableHead(c *Core) *Query {
	for _, name := range c.order {
		t := c.tenants[name]
		if !t.backlogged() {
			continue
		}
		if q := t.head(); q != nil && c.pickReader(q) != nil {
			return q
		}
	}
	return nil
}

// replay runs a scenario against a fresh core and returns the first invariant
// violation, or nil. It is deterministic: same scenario, same outcome.
func replay(sc scenario) error {
	c := NewCore(nil)
	for _, cfg := range sc.Tenants {
		if err := c.AddTenant(cfg); err != nil {
			return err
		}
	}
	for i, slots := range sc.Slots {
		if err := c.AddReader(fmt.Sprintf("r%d", i), slots); err != nil {
			return err
		}
	}
	var queued, running []*Query
	terminal := make(map[uint64]int)
	remove := func(list []*Query, q *Query) []*Query {
		for i, x := range list {
			if x == q {
				return append(list[:i:i], list[i+1:]...)
			}
		}
		return list
	}
	endOne := func(q *Query) error {
		terminal[q.ID]++
		if terminal[q.ID] > 1 {
			return fmt.Errorf("query %d terminated %d times", q.ID, terminal[q.ID])
		}
		return nil
	}
	checkDispatch := func(q *Query) error {
		t := c.tenants[q.Tenant]
		for l := Lane(0); l < q.Lane; l++ {
			if len(t.lanes[l]) > 0 {
				return fmt.Errorf("lane violation: %s dispatched on %s with %s backlogged",
					q.Tenant, q.Lane, l)
			}
		}
		return nil
	}
	for _, o := range sc.Ops {
		switch o.Kind {
		case opSubmit:
			tn := sc.Tenants[o.A%len(sc.Tenants)].Name
			lane := Lane(o.B % int(NumLanes))
			if q, rej := c.Submit(tn, lane); rej == nil {
				queued = append(queued, q)
			} else if c.ChargedTokens(tn) < 0 {
				return fmt.Errorf("negative charge for %s", tn)
			}
		case opDispatch:
			if q, ok := c.Dispatch(); ok {
				queued = remove(queued, q)
				running = append(running, q)
				if err := checkDispatch(q); err != nil {
					return err
				}
			}
		case opDrain:
			for {
				q, ok := c.Dispatch()
				if !ok {
					break
				}
				queued = remove(queued, q)
				running = append(running, q)
				if err := checkDispatch(q); err != nil {
					return err
				}
			}
			if q := dispatchableHead(c); q != nil {
				return fmt.Errorf("work conservation: query %d runnable after drain", q.ID)
			}
		case opComplete, opFail:
			if len(running) == 0 {
				continue
			}
			q := running[o.A%len(running)]
			if err := c.Complete(q, o.Kind == opComplete); err != nil {
				return err
			}
			running = remove(running, q)
			if err := endOne(q); err != nil {
				return err
			}
		case opCancel:
			if len(queued) == 0 {
				continue
			}
			q := queued[o.A%len(queued)]
			if err := c.Cancel(q); err != nil {
				return err
			}
			queued = remove(queued, q)
			if err := endOne(q); err != nil {
				return err
			}
		case opRequeue:
			if len(running) == 0 {
				continue
			}
			q := running[o.A%len(running)]
			reader := q.Reader
			if err := c.Requeue(q); err != nil {
				return err
			}
			running = remove(running, q)
			queued = append(queued, q)
			if q.Reader != reader {
				return fmt.Errorf("query %d lost its reader pin on requeue", q.ID)
			}
		}
		if err := c.CheckConservation(); err != nil {
			return err
		}
	}
	// Drain to empty: complete everything, then audit the final ledger.
	for {
		q, ok := c.Dispatch()
		if !ok {
			break
		}
		queued = remove(queued, q)
		running = append(running, q)
	}
	for len(running) > 0 {
		q := running[0]
		if err := c.Complete(q, true); err != nil {
			return err
		}
		running = running[1:]
		if err := endOne(q); err != nil {
			return err
		}
		for {
			q, ok := c.Dispatch()
			if !ok {
				break
			}
			queued = remove(queued, q)
			running = append(running, q)
		}
	}
	for _, q := range queued {
		if err := c.Cancel(q); err != nil {
			return err
		}
		if err := endOne(q); err != nil {
			return err
		}
	}
	if err := c.CheckConservation(); err != nil {
		return err
	}
	n := c.Counters()
	if n.Queued != 0 || n.Running != 0 {
		return fmt.Errorf("non-empty after full drain: %+v", n)
	}
	return nil
}

// shrinkOps is a ddmin pass over the op list: it removes chunks while the
// scenario still fails, so the reported counterexample is near-minimal.
func shrinkOps(sc scenario) scenario {
	for chunk := len(sc.Ops) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(sc.Ops); {
			cand := sc
			cand.Ops = append(append([]op{}, sc.Ops[:i]...), sc.Ops[i+chunk:]...)
			if replay(cand) != nil {
				sc = cand
				continue
			}
			i += chunk
		}
	}
	return sc
}

func TestPropertyRandomOps(t *testing.T) {
	seeds := int64(1000)
	if testing.Short() {
		seeds = 100
	}
	for seed := int64(0); seed < seeds; seed++ {
		sc := genScenario(rand.New(rand.NewSource(seed)))
		if err := replay(sc); err != nil {
			min := shrinkOps(sc)
			t.Fatalf("seed %d: %v\nshrunk to %d ops: %v", seed, err, len(min.Ops), min.Ops)
		}
	}
}

// saturatedLoop keeps every tenant backlogged and runs n dispatch+complete
// rounds on a single-slot reader, returning per-tenant dispatch counts and
// the maximum inter-dispatch gap seen by any tenant.
func saturatedLoop(t *testing.T, weights []int, n int) (map[string]int, int) {
	t.Helper()
	c := NewCore(nil)
	for i, w := range weights {
		name := fmt.Sprintf("t%d", i)
		if err := c.AddTenant(TenantConfig{Name: name, Weight: w, QueueBudget: 4}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if _, rej := c.Submit(name, LaneNormal); rej != nil {
				t.Fatalf("prefill: %v", rej)
			}
		}
	}
	if err := c.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	last := make(map[string]int)
	maxGap := 0
	for i := 0; i < n; i++ {
		q, ok := c.Dispatch()
		if !ok {
			t.Fatalf("round %d: nothing dispatched with full backlog", i)
		}
		if gap := i - last[q.Tenant]; gap > maxGap && counts[q.Tenant] > 0 {
			maxGap = gap
		}
		last[q.Tenant] = i
		counts[q.Tenant]++
		if err := c.Complete(q, true); err != nil {
			t.Fatal(err)
		}
		if _, rej := c.Submit(q.Tenant, LaneNormal); rej != nil {
			t.Fatalf("refill: %v", rej)
		}
	}
	return counts, maxGap
}

func TestWeightedFairnessExact(t *testing.T) {
	weights := []int{4, 2, 1}
	total := 0
	for _, w := range weights {
		total += w
	}
	n := 100 * total
	counts, _ := saturatedLoop(t, weights, n)
	for i, w := range weights {
		name := fmt.Sprintf("t%d", i)
		want := n * w / total
		got := counts[name]
		if got < want-total || got > want+total {
			t.Errorf("%s (weight %d): %d dispatches, want %d±%d", name, w, got, want, total)
		}
	}
}

func TestWeightedFairnessSeeds(t *testing.T) {
	seeds := int64(1000)
	if testing.Short() {
		seeds = 100
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nt := 2 + rng.Intn(3)
		weights := make([]int, nt)
		total := 0
		for i := range weights {
			weights[i] = 1 + rng.Intn(5)
			total += weights[i]
		}
		n := (10 + rng.Intn(40)) * total
		counts, maxGap := saturatedLoop(t, weights, n)
		for i, w := range weights {
			name := fmt.Sprintf("t%d", i)
			want := n * w / total
			if got := counts[name]; got < want-total || got > want+total {
				t.Fatalf("seed %d: %s (weight %d of %d): %d dispatches in %d, want %d±%d",
					seed, name, w, total, got, n, want, total)
			}
		}
		// Starvation freedom: with everyone backlogged, no tenant waits more
		// than one full WDRR cycle between dispatches.
		if maxGap > total {
			t.Fatalf("seed %d: starvation: max inter-dispatch gap %d > cycle %d",
				seed, maxGap, total)
		}
	}
}

func TestStrictLanes(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	lo, _ := c.Submit("a", LaneLow)
	nm, _ := c.Submit("a", LaneNormal)
	hi, _ := c.Submit("a", LaneHigh)
	for _, want := range []*Query{hi, nm, lo} {
		q, ok := c.Dispatch()
		if !ok || q != want {
			t.Fatalf("dispatch order: got %v, want query %d", q, want.ID)
		}
		if err := c.Complete(q, true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdmissionBackpressure(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a", QueueBudget: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, rej := c.Submit("a", LaneNormal); rej != nil {
			t.Fatalf("submit %d: %v", i, rej)
		}
	}
	_, rej := c.Submit("a", LaneNormal)
	if rej == nil || rej.Reason != "queue" {
		t.Fatalf("expected queue rejection, got %v", rej)
	}
	if rej.RetryAfter < time.Millisecond {
		t.Fatalf("retry-after %s below floor", rej.RetryAfter)
	}
	if _, rej := c.Submit("nobody", LaneNormal); rej == nil {
		t.Fatal("unknown tenant admitted")
	}
	if got := c.ChargedTokens("a"); got != 0 {
		t.Fatalf("rejected/queued queries charged %s tokens", got)
	}
}

func TestTokenBucketDebitsOnCompleteOnly(t *testing.T) {
	var now time.Duration
	clock := func() time.Duration { return now }
	c := NewCore(clock)
	err := c.AddTenant(TenantConfig{
		Name: "a", TokenRate: 1.0, TokenBurst: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	q, rej := c.Submit("a", LaneHigh)
	if rej != nil {
		t.Fatal(rej)
	}
	if _, ok := c.Dispatch(); !ok {
		t.Fatal("no dispatch")
	}
	if got := c.ChargedTokens("a"); got != 0 {
		t.Fatalf("charged %s before completion", got)
	}
	now += 30 * time.Millisecond // service time exceeds the burst
	if err := c.Complete(q, true); err != nil {
		t.Fatal(err)
	}
	if got := c.ChargedTokens("a"); got != 30*time.Millisecond {
		t.Fatalf("charged %s, want 30ms", got)
	}
	// Bucket is now in debt: the next submit is rejected with reason tokens,
	// and the rejection itself charges nothing.
	_, rej = c.Submit("a", LaneHigh)
	if rej == nil || rej.Reason != "tokens" {
		t.Fatalf("expected tokens rejection, got %v", rej)
	}
	if got := c.ChargedTokens("a"); got != 30*time.Millisecond {
		t.Fatalf("rejection changed charge to %s", got)
	}
	// After enough simulated time the bucket refills and admits again.
	now += 40 * time.Millisecond
	if _, rej := c.Submit("a", LaneHigh); rej != nil {
		t.Fatalf("post-refill submit rejected: %v", rej)
	}
}

func TestRequeuePinsReaderAndResumesFirst(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r1", 1); err != nil {
		t.Fatal(err)
	}
	q1, _ := c.Submit("a", LaneNormal)
	q2, _ := c.Submit("a", LaneNormal)
	d1, _ := c.Dispatch()
	d2, _ := c.Dispatch()
	if d1 != q1 || d2 != q2 {
		t.Fatal("dispatch order broke FIFO within a lane")
	}
	pin := q1.Reader
	if err := c.Requeue(q1); err != nil {
		t.Fatal(err)
	}
	// q1 must come back before any newcomer, and on the same reader.
	q3, _ := c.Submit("a", LaneNormal)
	rq, ok := c.Dispatch()
	if !ok || rq != q1 {
		t.Fatalf("requeued query did not resume first (got %v)", rq)
	}
	if q1.Reader != pin {
		t.Fatalf("pin broken: %s -> %s", pin, q1.Reader)
	}
	_ = q3
}

func TestLifecycleErrors(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	q, _ := c.Submit("a", LaneNormal)
	if err := c.Complete(q, true); err == nil {
		t.Fatal("completed a queued query")
	}
	if _, ok := c.Dispatch(); !ok {
		t.Fatal("no dispatch")
	}
	if err := c.Cancel(q); err == nil {
		t.Fatal("cancelled a running query")
	}
	if err := c.Complete(q, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(q, true); err == nil {
		t.Fatal("double complete not rejected")
	}
	if err := c.Requeue(q); err == nil {
		t.Fatal("requeued a terminal query")
	}
}

func TestRemoveReaderReturnsRunning(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r0", 2); err != nil {
		t.Fatal(err)
	}
	q1, _ := c.Submit("a", LaneNormal)
	q2, _ := c.Submit("a", LaneNormal)
	c.Dispatch()
	c.Dispatch()
	lost := c.RemoveReader("r0")
	if len(lost) != 2 {
		t.Fatalf("RemoveReader returned %d queries, want 2", len(lost))
	}
	// The caller fails them; the ledger stays conserved.
	for _, q := range []*Query{q1, q2} {
		if err := c.Complete(q, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	n := c.Counters()
	if n.Failed != 2 {
		t.Fatalf("failed=%d, want 2", n.Failed)
	}
}

func TestShouldYield(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a", QueueBudget: 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	q, _ := c.Submit("a", LaneNormal)
	c.Dispatch()
	if c.ShouldYield(q) {
		t.Fatal("yield requested with empty backlog (concurrency-1 overhead)")
	}
	// A low-lane arrival with no free slot: yield (work conservation).
	c.Submit("a", LaneLow)
	if !c.ShouldYield(q) {
		t.Fatal("no yield with backlog and zero free slots")
	}
	// A higher lane of the same tenant always preempts at a yield point.
	if err := c.AddReader("r1", 4); err != nil {
		t.Fatal(err)
	}
	c.Submit("a", LaneHigh)
	if !c.ShouldYield(q) {
		t.Fatal("no yield with a higher lane backlogged")
	}
}

func TestLoadBalancingLeastLoaded(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a", QueueBudget: 16}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r0", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r1", 2); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for i := 0; i < 4; i++ {
		c.Submit("a", LaneNormal)
		q, ok := c.Dispatch()
		if !ok {
			t.Fatalf("dispatch %d failed", i)
		}
		seen[q.Reader]++
	}
	if seen["r0"] != 2 || seen["r1"] != 2 {
		t.Fatalf("load not balanced: %v", seen)
	}
}
