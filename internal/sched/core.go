// Package sched is the concurrent-serving front end of the engine: a
// multi-tenant query scheduler with admission control over the multiplex
// reader fleet. It answers the "millions of users" axis the same way the
// storage stack answers durability — with a small deterministic core that
// property tests and the whole-system simulator can drive exhaustively, and
// a thin concurrent shell on top.
//
// The core implements:
//
//   - per-tenant token buckets denominated in simulated service time
//     (tokens refill with the injected clock — iomodel.Scale.Charged in the
//     experiment harness — and are debited with each query's measured
//     service time at completion; rejected queries are never charged);
//   - bounded admission queues with backpressure: once a tenant's queue
//     budget is exceeded, or its bucket is in debt, Submit rejects with a
//     retry-after hint instead of queueing unboundedly;
//   - three strict priority lanes per tenant (high before normal before
//     low) and weighted deficit round-robin across tenants, so one tenant's
//     flood cannot starve another's trickle;
//   - reader-node load balancing: admitted queries dispatch to the
//     least-loaded reader with a free slot; a query that has started on a
//     reader is pinned there across yields (its open scans hold reader
//     state).
//
// Core is single-threaded and clock-injected: the same submit/dispatch/
// complete sequence always produces the same decisions, which is what the
// fairness property tests and the simtest query-lifecycle oracle rely on.
// Scheduler (sched.go) wraps it in a mutex and condition channels for real
// concurrent callers.
package sched

import (
	"errors"
	"fmt"
	"time"
)

// Lane is a priority lane within a tenant. Lower values dispatch first.
type Lane int

// The three priority lanes.
const (
	LaneHigh Lane = iota
	LaneNormal
	LaneLow
	// NumLanes is the lane count, for sizing per-lane state.
	NumLanes
)

// String names the lane for logs, traces and reports.
func (l Lane) String() string {
	switch l {
	case LaneHigh:
		return "high"
	case LaneNormal:
		return "normal"
	case LaneLow:
		return "low"
	}
	return fmt.Sprintf("lane%d", int(l))
}

// ErrRejected is the sentinel wrapped by every admission rejection.
var ErrRejected = errors.New("sched: admission rejected")

// Rejection explains a rejected submission and hints when to retry.
type Rejection struct {
	Tenant string
	Lane   Lane
	// Reason is "queue" (lane budget exceeded), "tokens" (bucket in debt)
	// or "fault" (injected admission drop).
	Reason string
	// RetryAfter is the suggested backoff in simulated time.
	RetryAfter time.Duration
}

// Error implements error.
func (r *Rejection) Error() string {
	return fmt.Sprintf("sched: %s/%s rejected (%s), retry after %s",
		r.Tenant, r.Lane, r.Reason, r.RetryAfter)
}

// Unwrap lets errors.Is(err, ErrRejected) classify rejections.
func (r *Rejection) Unwrap() error { return ErrRejected }

// State is a query's lifecycle position. Transitions are
// Queued→Running→{Completed,Failed}, Running→Queued (yield),
// Queued→Cancelled. Terminal states are reached exactly once; Core returns
// an error on any second terminal transition, which the simtest oracle
// turns into a query-lifecycle violation.
type State int

// Query lifecycle states.
const (
	Queued State = iota
	Running
	Completed
	Cancelled
	Failed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Cancelled:
		return "cancelled"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("state%d", int(s))
}

// Query is one admitted schedulable unit.
type Query struct {
	ID     uint64
	Tenant string
	Lane   Lane
	State  State

	// SubmitAt/DispatchAt stamp the admission and (latest) dispatch on the
	// core's clock; their difference is the queue wait.
	SubmitAt   time.Duration
	DispatchAt time.Duration
	// FirstWait is the queue wait of the first dispatch (the admission
	// latency a client observes).
	FirstWait time.Duration
	// DepthAtSubmit is the tenant's total backlog when this query was
	// admitted (traced as queue_depth).
	DepthAtSubmit int
	// Reader is the assigned reader node; once set the query is pinned to
	// it across yields.
	Reader string

	dispatched bool
}

// TenantConfig declares one tenant.
type TenantConfig struct {
	// Name identifies the tenant; must be unique and non-empty.
	Name string
	// Weight is the WDRR share (default 1). A weight-4 tenant receives 4×
	// the dispatches of a weight-1 tenant while both are backlogged.
	Weight int
	// QueueBudget bounds the tenant's total queued queries across lanes
	// (default 64). Beyond it, Submit rejects with backpressure.
	QueueBudget int
	// TokenRate is the bucket refill rate in simulated service seconds per
	// simulated clock second (0 = unmetered). A rate of 2.0 lets the
	// tenant consume two reader-seconds per elapsed second.
	TokenRate float64
	// TokenBurst caps the bucket (default 1s of service time).
	TokenBurst time.Duration
}

type tenant struct {
	cfg     TenantConfig
	lanes   [NumLanes][]*Query
	deficit int

	tokens     float64 // simulated ns of service credit; may go negative
	lastRefill time.Duration

	// accounting
	queued     int
	dispatches int64
	charged    int64 // total simulated ns debited (audit: 0 for pure-reject tenants)
	// avgService is an EWMA of completed service times, for retry-after
	// hints on queue-full rejections.
	avgService time.Duration
}

func (t *tenant) refill(now time.Duration) {
	if t.cfg.TokenRate <= 0 {
		return
	}
	dt := now - t.lastRefill
	if dt <= 0 {
		return
	}
	t.lastRefill = now
	t.tokens += float64(dt) * t.cfg.TokenRate
	if burst := float64(t.cfg.TokenBurst); t.tokens > burst {
		t.tokens = burst
	}
}

// backlogged reports whether any lane holds a query.
func (t *tenant) backlogged() bool { return t.queued > 0 }

// head pops the next query in strict lane order.
func (t *tenant) head() *Query {
	for l := range t.lanes {
		if len(t.lanes[l]) > 0 {
			return t.lanes[l][0]
		}
	}
	return nil
}

func (t *tenant) pop(q *Query) {
	lane := t.lanes[q.Lane]
	for i, x := range lane {
		if x == q {
			t.lanes[q.Lane] = append(lane[:i:i], lane[i+1:]...)
			t.queued--
			return
		}
	}
}

type reader struct {
	name    string
	slots   int
	running []*Query
	// draining: no new dispatches; the reader leaves the fleet once its
	// running queries finish. Queued queries pinned to it were unpinned
	// when the drain started.
	draining bool
}

// Counters is the conservation ledger: submitted = admitted + rejected, and
// admitted = completed + cancelled + failed + queued + running.
type Counters struct {
	Submitted int64
	Admitted  int64
	Rejected  int64
	Completed int64
	Cancelled int64
	Failed    int64
	Queued    int64
	Running   int64
}

// Core is the deterministic scheduler state machine. It is not safe for
// concurrent use; Scheduler provides the locked shell.
type Core struct {
	clock   func() time.Duration
	tenants map[string]*tenant
	order   []string // tenant round-robin order (insertion order)
	rr      int      // next tenant index for WDRR rounds
	readers []*reader
	nextID  uint64

	counters Counters
}

// NewCore builds a core on the injected clock. A nil clock counts dispatch
// rounds (useful in pure logic tests); real embedders pass the simulated
// clock (iomodel.Scale.Charged) or another monotonic source.
func NewCore(clock func() time.Duration) *Core {
	c := &Core{tenants: make(map[string]*tenant)}
	if clock == nil {
		var tick time.Duration
		clock = func() time.Duration { tick += time.Microsecond; return tick }
	}
	c.clock = clock
	return c
}

// AddTenant registers a tenant.
func (c *Core) AddTenant(cfg TenantConfig) error {
	if cfg.Name == "" {
		return errors.New("sched: tenant name required")
	}
	if _, ok := c.tenants[cfg.Name]; ok {
		return fmt.Errorf("sched: tenant %q already registered", cfg.Name)
	}
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	if cfg.QueueBudget <= 0 {
		cfg.QueueBudget = 64
	}
	if cfg.TokenBurst <= 0 {
		cfg.TokenBurst = time.Second
	}
	t := &tenant{cfg: cfg, lastRefill: c.clock(), avgService: time.Millisecond}
	if cfg.TokenRate > 0 {
		t.tokens = float64(cfg.TokenBurst) // start full
	}
	c.tenants[cfg.Name] = t
	c.order = append(c.order, cfg.Name)
	return nil
}

// AddReader registers a reader node with the given concurrency slots.
// Membership is dynamic: the cluster controller adds readers while queries
// are queued and running (the Scheduler shell pumps the dispatch loop right
// after, so waiting work lands on the new reader immediately).
func (c *Core) AddReader(name string, slots int) error {
	if slots <= 0 {
		slots = 1
	}
	for _, r := range c.readers {
		if r.name == name {
			return fmt.Errorf("sched: reader %q already registered", name)
		}
	}
	c.readers = append(c.readers, &reader{name: name, slots: slots})
	return nil
}

// RemoveReader drops a reader (a crash) and returns the queries that were
// running on it; the caller decides their fate (fail them, or requeue).
// Queued queries pinned to the removed reader are unpinned — their
// reader-local scan state died with the reader, so they place fresh on the
// surviving fleet instead of waiting forever for a name that will never
// have a free slot again.
func (c *Core) RemoveReader(name string) []*Query {
	for i, r := range c.readers {
		if r.name == name {
			c.readers = append(c.readers[:i:i], c.readers[i+1:]...)
			c.unpinQueued(name)
			return r.running
		}
	}
	return nil
}

// DrainReader starts a graceful drain: the reader takes no new dispatches,
// its running queries finish normally (or unpin when they yield), and
// queued queries pinned to it are released to the rest of the fleet. The
// reader leaves the fleet the moment it goes idle; the return value reports
// whether it was removed immediately. Draining an unknown reader is a no-op
// returning false; conservation is untouched in every case.
func (c *Core) DrainReader(name string) bool {
	for i, r := range c.readers {
		if r.name != name {
			continue
		}
		r.draining = true
		c.unpinQueued(name)
		if len(r.running) == 0 {
			c.readers = append(c.readers[:i:i], c.readers[i+1:]...)
			return true
		}
		return false
	}
	return false
}

// Draining reports whether the named reader is present and draining.
func (c *Core) Draining(name string) bool {
	for _, r := range c.readers {
		if r.name == name {
			return r.draining
		}
	}
	return false
}

// Readers returns the current reader names in registration order, draining
// ones included (they still hold running queries).
func (c *Core) Readers() []string {
	out := make([]string, len(c.readers))
	for i, r := range c.readers {
		out[i] = r.name
	}
	return out
}

// unpinQueued clears the reader pin of every queued query pinned to name,
// walking tenants in registration order (deterministic).
func (c *Core) unpinQueued(name string) {
	for _, tn := range c.order {
		t := c.tenants[tn]
		for l := range t.lanes {
			for _, q := range t.lanes[l] {
				if q.Reader == name {
					q.Reader = ""
				}
			}
		}
	}
}

// reapDrained removes a draining reader that has gone idle.
func (c *Core) reapDrained(name string) {
	for i, r := range c.readers {
		if r.name == name && r.draining && len(r.running) == 0 {
			c.readers = append(c.readers[:i:i], c.readers[i+1:]...)
			return
		}
	}
}

// Submit admits or rejects a query. A nil Rejection means the query is
// queued; call Dispatch to drain. Rejected queries are never charged tokens.
func (c *Core) Submit(tenantName string, lane Lane) (*Query, *Rejection) {
	c.counters.Submitted++
	t, ok := c.tenants[tenantName]
	if !ok {
		c.counters.Rejected++
		return nil, &Rejection{Tenant: tenantName, Lane: lane, Reason: "queue", RetryAfter: time.Second}
	}
	if lane < 0 || lane >= NumLanes {
		lane = LaneLow
	}
	now := c.clock()
	t.refill(now)
	if t.queued >= t.cfg.QueueBudget {
		c.counters.Rejected++
		// Backpressure hint: roughly how long until the backlog drains at
		// the tenant's recent service rate and share of the fleet.
		after := time.Duration(t.queued) * t.avgService / time.Duration(t.cfg.Weight)
		if after < time.Millisecond {
			after = time.Millisecond
		}
		// Clamp the hint: under high concurrency the charged clock advances
		// for every in-flight query, so measured service times (and hence
		// this estimate) can be inflated by the whole fleet's charges. A
		// bounded hint keeps reject-retry loops live instead of parking
		// clients for hours of simulated time.
		if after > time.Second {
			after = time.Second
		}
		return nil, &Rejection{Tenant: tenantName, Lane: lane, Reason: "queue", RetryAfter: after}
	}
	if t.cfg.TokenRate > 0 && t.tokens <= 0 {
		c.counters.Rejected++
		after := time.Duration(-t.tokens / t.cfg.TokenRate)
		if after < time.Millisecond {
			after = time.Millisecond
		}
		return nil, &Rejection{Tenant: tenantName, Lane: lane, Reason: "tokens", RetryAfter: after}
	}
	c.nextID++
	q := &Query{
		ID: c.nextID, Tenant: tenantName, Lane: lane, State: Queued,
		SubmitAt: now, DepthAtSubmit: t.queued,
	}
	t.lanes[lane] = append(t.lanes[lane], q)
	t.queued++
	c.counters.Admitted++
	c.counters.Queued++
	return q, nil
}

// pickReader returns the least-loaded reader with a free slot (ties break on
// registration order, keeping the choice deterministic). When q is pinned,
// only its own reader qualifies.
func (c *Core) pickReader(q *Query) *reader {
	var best *reader
	for _, r := range c.readers {
		if r.draining {
			continue // no new work on a draining reader
		}
		if q.Reader != "" && r.name != q.Reader {
			continue
		}
		if len(r.running) >= r.slots {
			continue
		}
		if best == nil || len(r.running)*best.slots < len(best.running)*r.slots {
			best = r
		}
	}
	return best
}

// Dispatch runs one weighted-deficit-round-robin step: it selects the next
// query to run and assigns it a reader. It returns false when nothing can
// dispatch (no backlog, or no reader has a free slot for any head-of-line
// query). Callers drain by looping until false.
func (c *Core) Dispatch() (*Query, bool) {
	if len(c.order) == 0 || len(c.readers) == 0 {
		return nil, false
	}
	// Two sweeps over the tenant ring: the first spends existing deficits,
	// the second replenishes each backlogged tenant's deficit by its weight
	// and tries again. Dispatching at most one query per call keeps every
	// decision visible to the caller (and to the property tests).
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < len(c.order); i++ {
			idx := (c.rr + i) % len(c.order)
			t := c.tenants[c.order[idx]]
			if !t.backlogged() {
				t.deficit = 0 // standard DRR: idle tenants carry no credit
				continue
			}
			if sweep == 1 {
				// Replenish by the weight, capped: a tenant whose head is
				// pinned to a busy reader must not bank unbounded credit
				// while blocked and then burst past everyone.
				t.deficit += t.cfg.Weight
				if t.deficit > t.cfg.Weight {
					t.deficit = t.cfg.Weight
				}
			}
			if t.deficit <= 0 {
				continue
			}
			q := t.head()
			r := c.pickReader(q)
			if r == nil {
				continue // pinned to a busy reader, or fleet saturated
			}
			t.deficit--
			t.pop(q)
			now := c.clock()
			t.refill(now)
			q.State = Running
			q.DispatchAt = now
			if !q.dispatched {
				q.dispatched = true
				q.FirstWait = now - q.SubmitAt
			}
			q.Reader = r.name
			r.running = append(r.running, q)
			t.dispatches++
			c.counters.Queued--
			c.counters.Running++
			// Advance the ring past this tenant only when its deficit is
			// spent, so a weight-w tenant keeps the floor for w dispatches.
			if t.deficit <= 0 {
				c.rr = (idx + 1) % len(c.order)
			} else {
				c.rr = idx
			}
			return q, true
		}
	}
	return nil, false
}

// Requeue yields a running query back to the front of its lane (it resumes
// before queued peers — its scans are warm) and frees its reader slot. The
// query stays pinned to its reader — unless that reader is draining, in
// which case the pin is released (the drain invalidates reader-local scan
// state anyway) and the idle reader leaves the fleet.
func (c *Core) Requeue(q *Query) error {
	if q.State != Running {
		return fmt.Errorf("sched: requeue of %s query %d", q.State, q.ID)
	}
	c.detach(q)
	if c.Draining(q.Reader) {
		name := q.Reader
		q.Reader = ""
		c.reapDrained(name)
	}
	t := c.tenants[q.Tenant]
	q.State = Queued
	t.lanes[q.Lane] = append([]*Query{q}, t.lanes[q.Lane]...)
	t.queued++
	c.counters.Running--
	c.counters.Queued++
	return nil
}

func (c *Core) detach(q *Query) {
	for _, r := range c.readers {
		if r.name != q.Reader {
			continue
		}
		for i, x := range r.running {
			if x == q {
				r.running = append(r.running[:i:i], r.running[i+1:]...)
				return
			}
		}
	}
}

// Complete terminates a running query, freeing its slot and charging its
// measured service time to the tenant's bucket. ok=false records a failure
// (a crashed reader, a query error) instead of a completion.
func (c *Core) Complete(q *Query, ok bool) error {
	if q.State != Running {
		return fmt.Errorf("sched: complete of %s query %d", q.State, q.ID)
	}
	c.detach(q)
	c.reapDrained(q.Reader)
	t := c.tenants[q.Tenant]
	now := c.clock()
	t.refill(now)
	cost := now - q.DispatchAt
	if cost < 0 {
		cost = 0
	}
	t.tokens -= float64(cost)
	t.charged += int64(cost)
	t.avgService = (3*t.avgService + cost) / 4
	c.counters.Running--
	if ok {
		q.State = Completed
		c.counters.Completed++
	} else {
		q.State = Failed
		c.counters.Failed++
	}
	return nil
}

// Cancel terminates a queued query without running it. Cancelling a query
// that is running or already terminal is an error (the lifecycle oracle's
// "exactly once" edge).
func (c *Core) Cancel(q *Query) error {
	if q.State != Queued {
		return fmt.Errorf("sched: cancel of %s query %d", q.State, q.ID)
	}
	t := c.tenants[q.Tenant]
	t.pop(q)
	q.State = Cancelled
	c.counters.Queued--
	c.counters.Cancelled++
	return nil
}

// ShouldYield reports whether a running query ought to release its slot at
// its next yield point: true when a strictly higher lane of its own tenant
// has backlog, or when any query is waiting while every slot is occupied.
// With an empty backlog it is false, so yield points cost nothing at
// concurrency one.
func (c *Core) ShouldYield(q *Query) bool {
	if q.State != Running {
		return false
	}
	t := c.tenants[q.Tenant]
	for l := Lane(0); l < q.Lane; l++ {
		if len(t.lanes[l]) > 0 {
			return true
		}
	}
	if c.counters.Queued == 0 {
		return false
	}
	return c.FreeSlots() == 0
}

// Backlog returns the total queued queries across tenants.
func (c *Core) Backlog() int { return int(c.counters.Queued) }

// FreeSlots returns the total unoccupied reader slots. A draining reader's
// free slots don't count — nothing new may dispatch there.
func (c *Core) FreeSlots() int {
	free := 0
	for _, r := range c.readers {
		if r.draining {
			continue
		}
		free += r.slots - len(r.running)
	}
	return free
}

// LoadStats is the load snapshot the cluster controller's reader autoscaler
// consumes: backlog pressure (Queued, OldestWait) argues for scaling out,
// idle capacity (FreeSlots against Running) argues for scaling in.
type LoadStats struct {
	Queued     int           // queries waiting across all tenants and lanes
	Running    int           // queries occupying reader slots
	Readers    int           // non-draining readers
	Draining   int           // draining readers still finishing work
	FreeSlots  int           // unoccupied slots on non-draining readers
	OldestWait time.Duration // queue wait of the longest-waiting queued query
}

// Load takes the load snapshot. It reads the clock at most once (only when
// something is queued), so it perturbs the charged simulated clock no more
// than any other scheduling decision.
func (c *Core) Load() LoadStats {
	var s LoadStats
	s.Queued = int(c.counters.Queued)
	s.Running = int(c.counters.Running)
	for _, r := range c.readers {
		if r.draining {
			s.Draining++
			continue
		}
		s.Readers++
		s.FreeSlots += r.slots - len(r.running)
	}
	if s.Queued > 0 {
		now := c.clock()
		for _, tn := range c.order {
			t := c.tenants[tn]
			for l := range t.lanes {
				for _, q := range t.lanes[l] {
					if w := now - q.SubmitAt; w > s.OldestWait {
						s.OldestWait = w
					}
				}
			}
		}
	}
	return s
}

// QueueDepth reports one tenant lane's queue length.
func (c *Core) QueueDepth(tenantName string, lane Lane) int {
	t, ok := c.tenants[tenantName]
	if !ok || lane < 0 || lane >= NumLanes {
		return 0
	}
	return len(t.lanes[lane])
}

// Dispatches reports how many dispatches a tenant has received.
func (c *Core) Dispatches(tenantName string) int64 {
	if t, ok := c.tenants[tenantName]; ok {
		return t.dispatches
	}
	return 0
}

// ChargedTokens reports the total simulated service time debited from a
// tenant's bucket. Tenants whose every submission was rejected report zero.
func (c *Core) ChargedTokens(tenantName string) time.Duration {
	if t, ok := c.tenants[tenantName]; ok {
		return time.Duration(t.charged)
	}
	return 0
}

// Counters returns the conservation ledger.
func (c *Core) Counters() Counters { return c.counters }

// CheckConservation verifies the ledger invariants: every submission was
// admitted or rejected, and every admitted query is in exactly one of
// queued/running/terminal. It is the audit the stress test and the simtest
// oracle run after draining.
func (c *Core) CheckConservation() error {
	n := c.counters
	if n.Submitted != n.Admitted+n.Rejected {
		return fmt.Errorf("sched: submitted %d != admitted %d + rejected %d",
			n.Submitted, n.Admitted, n.Rejected)
	}
	if n.Admitted != n.Completed+n.Cancelled+n.Failed+n.Queued+n.Running {
		return fmt.Errorf("sched: admitted %d != completed %d + cancelled %d + failed %d + queued %d + running %d",
			n.Admitted, n.Completed, n.Cancelled, n.Failed, n.Queued, n.Running)
	}
	queued, running := 0, 0
	for _, name := range c.order {
		queued += c.tenants[name].queued
	}
	for _, r := range c.readers {
		running += len(r.running)
	}
	if int64(queued) != n.Queued || int64(running) != n.Running {
		return fmt.Errorf("sched: ledger says queued=%d running=%d, structures hold %d/%d",
			n.Queued, n.Running, queued, running)
	}
	return nil
}
