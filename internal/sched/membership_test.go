package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudiq/internal/exec"
)

// ---------------------------------------------------------------------------
// Dynamic reader membership: graceful drains, crash removal, and the
// cancel-vs-drain race. These are the regression tests for the static-fleet
// assumption the core used to bake in (a queued query pinned to a removed
// reader waited forever).
// ---------------------------------------------------------------------------

func TestDrainReaderGraceful(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReader("r1", 1); err != nil {
		t.Fatal(err)
	}

	q1, _ := c.Submit("a", LaneNormal)
	q2, _ := c.Submit("a", LaneNormal)
	q3, _ := c.Submit("a", LaneNormal)
	if _, ok := c.Dispatch(); !ok || q1.Reader != "r0" {
		t.Fatalf("q1 on %q", q1.Reader)
	}
	if _, ok := c.Dispatch(); !ok || q2.Reader != "r1" {
		t.Fatalf("q2 on %q", q2.Reader)
	}
	if _, ok := c.Dispatch(); ok {
		t.Fatal("fleet full, q3 should wait")
	}

	// Drain r0 while q1 runs on it: not idle, so it stays (draining) and
	// takes no new work.
	if gone := c.DrainReader("r0"); gone {
		t.Fatal("r0 reported idle while q1 runs on it")
	}
	if !c.Draining("r0") {
		t.Fatal("r0 not draining")
	}
	if c.FreeSlots() != 0 {
		t.Fatalf("free slots = %d; draining capacity must not count", c.FreeSlots())
	}

	// q1 yields: the pin is released (its reader is draining) and the idle
	// reader leaves the fleet.
	if err := c.Requeue(q1); err != nil {
		t.Fatal(err)
	}
	if q1.Reader != "" {
		t.Fatalf("q1 still pinned to %q after drain-requeue", q1.Reader)
	}
	if got := c.Readers(); len(got) != 1 || got[0] != "r1" {
		t.Fatalf("readers = %v, want [r1]", got)
	}

	// The survivors finish on r1, in order.
	if err := c.Complete(q2, true); err != nil {
		t.Fatal(err)
	}
	for _, q := range []*Query{q1, q3} {
		if _, ok := c.Dispatch(); !ok || q.Reader != "r1" {
			t.Fatalf("query %d on %q, want r1", q.ID, q.Reader)
		}
		if err := c.Complete(q, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if n := c.Counters(); n.Completed != 3 {
		t.Fatalf("counters %+v", n)
	}
}

func TestDrainIdleReaderLeavesImmediately(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	_ = c.AddReader("r0", 1)
	_ = c.AddReader("r1", 1)

	// Pin a queued query to r0 (dispatch there, then yield).
	q, _ := c.Submit("a", LaneNormal)
	c.Dispatch()
	if err := c.Requeue(q); err != nil {
		t.Fatal(err)
	}
	if q.Reader != "r0" {
		t.Fatalf("q pinned to %q, want r0", q.Reader)
	}

	if gone := c.DrainReader("r0"); !gone {
		t.Fatal("idle r0 should leave immediately")
	}
	if q.Reader != "" {
		t.Fatal("drain did not unpin the queued query")
	}
	if _, ok := c.Dispatch(); !ok || q.Reader != "r1" {
		t.Fatalf("q on %q, want r1", q.Reader)
	}
	if c.DrainReader("nope") {
		t.Fatal("draining an unknown reader succeeded")
	}
}

// TestRemoveReaderUnpinsQueued is the regression test for the static-fleet
// bug: a query that yielded on a reader stayed pinned to it after the reader
// crashed out of the fleet, waiting forever for a slot that could never free.
func TestRemoveReaderUnpinsQueued(t *testing.T) {
	c := NewCore(nil)
	if err := c.AddTenant(TenantConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	_ = c.AddReader("r0", 1)
	_ = c.AddReader("r1", 1)

	q, _ := c.Submit("a", LaneNormal)
	c.Dispatch() // q -> r0
	if err := c.Requeue(q); err != nil {
		t.Fatal(err)
	}
	if victims := c.RemoveReader("r0"); len(victims) != 0 {
		t.Fatalf("victims = %v, want none (q is queued)", victims)
	}
	if q.Reader != "" {
		t.Fatalf("q still pinned to removed reader %q", q.Reader)
	}
	if _, ok := c.Dispatch(); !ok || q.Reader != "r1" {
		t.Fatalf("q on %q, want redispatch on r1", q.Reader)
	}
	if err := c.Complete(q, true); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelVsDrainRace races a queued query's cancellation against a drain
// of the fleet's only reader (plus a replacement join). Whatever interleaving
// the race takes — cancelled while queued, granted to the replacement and
// run, or grant-raced-by-cancel and failed — the ledger must balance.
func TestCancelVsDrainRace(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 50
	}
	for i := 0; i < iters; i++ {
		s := New(Config{})
		if err := s.AddTenant(TenantConfig{Name: "a", QueueBudget: 8}); err != nil {
			t.Fatal(err)
		}
		if err := s.AddReader("r0", 1); err != nil {
			t.Fatal(err)
		}

		gate := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // occupies r0 until released
			defer wg.Done()
			_ = s.Run(context.Background(), "a", LaneNormal, func(context.Context, string) error {
				<-gate
				return nil
			})
		}()
		waitFor(t, func() bool { return s.Counters().Running == 1 })

		ctx, cancel := context.WithCancel(context.Background())
		wg.Add(1)
		go func() { // the racing query: queued behind the occupier
			defer wg.Done()
			_ = s.Run(ctx, "a", LaneNormal, func(context.Context, string) error { return nil })
		}()
		waitFor(t, func() bool { return s.Counters().Queued == 1 })

		wg.Add(2)
		go func() { defer wg.Done(); cancel() }()
		go func() { // rolling restart of the only reader
			defer wg.Done()
			s.DrainReader("r0")
			if err := s.AddReader("r1", 1); err != nil {
				t.Error(err)
			}
		}()
		close(gate)
		wg.Wait()
		cancel()

		if err := s.CheckConservation(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		n := s.Counters()
		if n.Admitted != 2 || n.Completed+n.Cancelled+n.Failed != 2 {
			t.Fatalf("iter %d: counters %+v", i, n)
		}
	}
}

// ---------------------------------------------------------------------------
// Scale: thousands of concurrent sessions across all three lanes against a
// fleet whose membership churns mid-run. Asserts conservation and starvation
// freedom (every session's query eventually completes, on every lane). The
// full 2048-session shape runs in the plain test sweep; `go test -short
// -race` runs a reduced shape under the race detector.
// ---------------------------------------------------------------------------

func TestScaleConcurrentSessions(t *testing.T) {
	sessions := 2048
	if testing.Short() {
		sessions = 256
	}

	s := New(Config{})
	tenants := []TenantConfig{
		{Name: "gold", Weight: 4, QueueBudget: 256},
		{Name: "silver", Weight: 2, QueueBudget: 256},
		{Name: "bronze", Weight: 1, QueueBudget: 256},
	}
	for _, cfg := range tenants {
		if err := s.AddTenant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.AddReader(fmt.Sprintf("r%d", i), 8); err != nil {
			t.Fatal(err)
		}
	}

	var completed int64
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := tenants[i%len(tenants)].Name
			lane := Lane(i % int(NumLanes))
			// Starvation freedom is the claim under test: with bounded
			// retries on backpressure, every session must finish.
			for attempt := 0; ; attempt++ {
				err := s.Run(context.Background(), tenant, lane, func(ctx context.Context, reader string) error {
					return exec.YieldPoint(ctx)
				})
				if err == nil {
					atomic.AddInt64(&completed, 1)
					return
				}
				var rej *Rejection
				if !errors.As(err, &rej) || attempt > 10*sessions {
					t.Errorf("session %d: %v (attempt %d)", i, err, attempt)
					return
				}
				time.Sleep(time.Duration(1+attempt%7) * 100 * time.Microsecond)
			}
		}(i)
	}

	// Membership churn while the fleet is under load: a rolling
	// drain-and-replace of every original reader, then one scale-out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			s.DrainReader(fmt.Sprintf("r%d", i))
			if err := s.AddReader(fmt.Sprintf("r%d'", i), 8); err != nil {
				t.Error(err)
			}
			time.Sleep(time.Millisecond)
		}
		if err := s.AddReader("r3", 8); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	if got := atomic.LoadInt64(&completed); got != int64(sessions) {
		t.Fatalf("completed %d of %d sessions", got, sessions)
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	for _, st := range s.Lanes() {
		if st.Admitted == 0 {
			t.Fatalf("lane %s starved: nothing admitted", st.Lane)
		}
	}
	for _, cfg := range tenants {
		if s.Dispatches(cfg.Name) == 0 {
			t.Fatalf("tenant %s starved", cfg.Name)
		}
	}
	load := s.Load()
	if load.Queued != 0 || load.Running != 0 {
		t.Fatalf("load after drain-down: %+v", load)
	}
	if load.Readers != 4 { // r0'..r2' plus r3
		t.Fatalf("readers = %d, want 4 (%v)", load.Readers, s.Readers())
	}
}
