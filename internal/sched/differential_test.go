// Differential test: a query run through the scheduler — admitted, queued,
// dispatched, yielding between segments, possibly preempted — must produce
// byte-identical results to the same query run directly against the engine.
// Scheduling may reorder queries; it must never change what they return.
package sched_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"cloudiq"
	"cloudiq/internal/sched"
)

func diffSchema() cloudiq.Schema {
	return cloudiq.Schema{Cols: []cloudiq.ColumnDef{
		{Name: "k", Typ: cloudiq.Int64},
		{Name: "v", Typ: cloudiq.String},
	}}
}

// buildDB loads a 400-row table in 32-row segments, so every scan crosses
// a dozen segment boundaries — a dozen yield points per query.
func buildDB(t *testing.T) *cloudiq.Database {
	t.Helper()
	ctx := context.Background()
	store := cloudiq.NewMemObjectStore(cloudiq.ObjectStoreConfig{})
	db, err := cloudiq.Open(ctx, cloudiq.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	if err := db.AttachCloudDbspace("user", store, cloudiq.CloudOptions{}); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	tbl, err := tx.CreateTable(ctx, "user", "kv", diffSchema(), cloudiq.TableOptions{SegRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	b := cloudiq.NewBatch(diffSchema())
	for i := 0; i < 400; i++ {
		b.Vecs[0].AppendInt(int64(i))
		b.Vecs[1].AppendStr(fmt.Sprintf("val-%d", i))
	}
	if err := tbl.Append(ctx, b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	return db
}

// runQuery scans kv for k >= lo and serializes the result row by row. The
// ctx carries the scheduler's yield point when run under the scheduler.
func runQuery(ctx context.Context, db *cloudiq.Database, lo int64) ([]byte, error) {
	tx := db.Begin()
	defer func() { _ = tx.Rollback(ctx) }()
	tbl, err := tx.Table(ctx, "user", "kv")
	if err != nil {
		return nil, err
	}
	src, err := cloudiq.Scan(tbl, []string{"k", "v"}, cloudiq.ScanOptions{
		Filter: cloudiq.GeE(cloudiq.Col("k"), cloudiq.ConstI(lo)),
	})
	if err != nil {
		return nil, err
	}
	out, err := cloudiq.Collect(ctx, src)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if out != nil {
		ks, vs := out.Col("k"), out.Col("v")
		for i := range ks.I64 {
			fmt.Fprintf(&buf, "%d,%s\n", ks.I64[i], vs.Str[i])
		}
	}
	return buf.Bytes(), nil
}

func TestSchedulerResultsMatchDirect(t *testing.T) {
	db := buildDB(t)
	ctx := context.Background()

	direct, err := runQuery(ctx, db, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) == 0 {
		t.Fatal("direct query returned nothing; test is vacuous")
	}

	s := sched.New(sched.Config{})
	if err := s.AddTenant(sched.TenantConfig{Name: "t0"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	var got []byte
	err = s.Run(ctx, "t0", sched.LaneNormal, func(ctx context.Context, reader string) error {
		var err error
		got, err = runQuery(ctx, db, 100)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, direct) {
		t.Fatalf("scheduler-run query diverged: %d bytes vs %d direct", len(got), len(direct))
	}
}

func TestSchedulerResultsMatchDirectUnderContention(t *testing.T) {
	db := buildDB(t)
	ctx := context.Background()

	const n = 12
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		var err error
		want[i], err = runQuery(ctx, db, int64(i*31))
		if err != nil {
			t.Fatal(err)
		}
	}

	// One single-slot reader and three tenants: every query yields at
	// segment boundaries and most get preempted at least once.
	s := sched.New(sched.Config{})
	for i := 0; i < 3; i++ {
		err := s.AddTenant(sched.TenantConfig{
			Name: fmt.Sprintf("t%d", i), Weight: i + 1, QueueBudget: n,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}

	got := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%3)
			lane := sched.Lane(i % int(sched.NumLanes))
			errs[i] = s.Run(ctx, tenant, lane, func(ctx context.Context, reader string) error {
				var err error
				got[i], err = runQuery(ctx, db, int64(i*31))
				return err
			})
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("query %d diverged under scheduling: %d bytes vs %d direct",
				i, len(got[i]), len(want[i]))
		}
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
