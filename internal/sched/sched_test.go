package sched

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cloudiq/internal/exec"
	"cloudiq/internal/faultinject"
)

func newTestScheduler(t *testing.T, readers, slots int) *Scheduler {
	t.Helper()
	s := New(Config{})
	if err := s.AddTenant(TenantConfig{Name: "a", QueueBudget: 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < readers; i++ {
		if err := s.AddReader(fmt.Sprintf("r%d", i), slots); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRunExecutesOnReader(t *testing.T) {
	s := newTestScheduler(t, 2, 1)
	var got string
	err := s.Run(context.Background(), "a", LaneHigh, func(ctx context.Context, reader string) error {
		got = reader
		return exec.YieldPoint(ctx) // no backlog: must be a no-op
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "r0" {
		t.Fatalf("ran on %q, want r0 (least-loaded tie breaks on registration order)", got)
	}
	n := s.Counters()
	if n.Completed != 1 || n.Queued != 0 || n.Running != 0 {
		t.Fatalf("counters %+v", n)
	}
}

func TestRunPropagatesQueryError(t *testing.T) {
	s := newTestScheduler(t, 1, 1)
	boom := errors.New("boom")
	err := s.Run(context.Background(), "a", LaneNormal, func(context.Context, string) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := s.Counters(); n.Failed != 1 {
		t.Fatalf("counters %+v, want one failure", n)
	}
}

func TestRejectionChargedZeroTokens(t *testing.T) {
	s := New(Config{})
	err := s.AddTenant(TenantConfig{Name: "a", QueueBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	// No readers: the first query queues forever, the second overflows the
	// budget and must be rejected without touching the token ledger.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		done <- s.Run(ctx, "a", LaneNormal, func(context.Context, string) error { return nil })
	}()
	<-started
	waitFor(t, func() bool { return s.Counters().Queued == 1 })
	err = s.Run(ctx, "a", LaneNormal, func(context.Context, string) error { return nil })
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != "queue" {
		t.Fatalf("err = %v, want queue rejection", err)
	}
	if !errors.Is(err, ErrRejected) {
		t.Fatal("rejection does not unwrap to ErrRejected")
	}
	if got := s.ChargedTokens("a"); got != 0 {
		t.Fatalf("rejected/queued work charged %s", got)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued query ended with %v, want context.Canceled", err)
	}
	if n := s.Counters(); n.Cancelled != 1 || n.Rejected != 1 {
		t.Fatalf("counters %+v", n)
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionFaultRejects(t *testing.T) {
	plan := faultinject.New(1).Always(faultinject.SchedAdmit) // drop every admission
	s := New(Config{Faults: plan})
	if err := s.AddTenant(TenantConfig{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddReader("r0", 1); err != nil {
		t.Fatal(err)
	}
	err := s.Run(context.Background(), "a", LaneNormal, func(context.Context, string) error {
		t.Fatal("dropped admission still ran")
		return nil
	})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != "fault" {
		t.Fatalf("err = %v, want fault rejection", err)
	}
	if s.FaultRejected() != 1 {
		t.Fatalf("FaultRejected = %d, want 1", s.FaultRejected())
	}
	// Dropped admissions never reach the core ledger.
	if n := s.Counters(); n.Submitted != 0 {
		t.Fatalf("counters %+v, want untouched ledger", n)
	}
	if got := s.ChargedTokens("a"); got != 0 {
		t.Fatalf("dropped admission charged %s", got)
	}
}

func TestYieldPreemptsForHighLane(t *testing.T) {
	s := newTestScheduler(t, 1, 1)
	order := make(chan string, 4)
	lowAtYield := make(chan struct{})
	highDone := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- s.Run(context.Background(), "a", LaneLow, func(ctx context.Context, reader string) error {
			order <- "low-start"
			close(lowAtYield)
			<-highDone // let the high query queue up before yielding
			if err := exec.YieldPoint(ctx); err != nil {
				return err
			}
			order <- "low-resume"
			return nil
		})
	}()
	<-lowAtYield
	// Submit high while the slot is held; it must run during low's yield.
	go func() {
		waitFor(t, func() bool { return s.Counters().Queued == 1 })
		close(highDone)
	}()
	err := s.Run(context.Background(), "a", LaneHigh, func(context.Context, string) error {
		order <- "high"
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	close(order)
	var seq []string
	for s := range order {
		seq = append(seq, s)
	}
	want := []string{"low-start", "high", "low-resume"}
	if len(seq) != len(want) {
		t.Fatalf("sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence %v, want %v", seq, want)
		}
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestLaneStats(t *testing.T) {
	s := newTestScheduler(t, 1, 1)
	for i := 0; i < 3; i++ {
		err := s.Run(context.Background(), "a", LaneNormal, func(context.Context, string) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	lanes := s.Lanes()
	if lanes[LaneNormal].Admitted != 3 || len(lanes[LaneNormal].Waits) != 3 {
		t.Fatalf("normal lane stats %+v", lanes[LaneNormal])
	}
	if lanes[LaneHigh].Admitted != 0 {
		t.Fatalf("high lane stats %+v", lanes[LaneHigh])
	}
}

// waitFor polls a condition that a concurrent Run goroutine establishes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
