// Package blockdev provides simulated block devices with strong consistency:
// the conventional dbspace substrate (EBS- and EFS-like volumes) and the
// locally attached SSD used by the Object Cache Manager. Unlike the object
// store, a block device serializes at the device: reads and writes contend
// for one queue, which is what produces the paper's OCM brown-out (reads for
// cache hits slowing down when asynchronous writes saturate the SSD).
package blockdev

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"cloudiq/internal/faultinject"
	"cloudiq/internal/iomodel"
)

// ErrOutOfRange is returned when an I/O extends past the device size and the
// device is not growable.
var ErrOutOfRange = errors.New("blockdev: I/O beyond device size")

// Device is the block-device contract used by conventional dbspaces and the
// OCM. Offsets are byte offsets; devices are byte-addressable in the
// simulation (the dbspace layer imposes block alignment).
type Device interface {
	ReadAt(ctx context.Context, p []byte, off int64) error
	WriteAt(ctx context.Context, p []byte, off int64) error
	Size() int64
}

// Config parameterizes a MemDevice.
type Config struct {
	// Capacity is the device size in bytes. If Growable is set, writes past
	// the end extend the device instead of failing.
	Capacity int64
	Growable bool

	// ReadLatency / WriteLatency are per-request service times slept outside
	// the device queue (e.g. network round trip to a remote volume).
	ReadLatency  iomodel.Latency
	WriteLatency iomodel.Latency

	// Queue, if non-nil, is the device's serial service capacity: a
	// combined IOPS (per-op) and bandwidth (per-byte) limit that reads and
	// writes share. This is where queueing delay comes from.
	Queue *iomodel.Resource

	// Network, if non-nil, models a shared NIC consumed by remote volumes.
	Network *iomodel.Resource

	// Scale is the time scale for latency sleeps. Nil means no sleeping.
	Scale *iomodel.Scale

	// Seed seeds the jitter source.
	Seed int64

	// Faults, when non-nil, is consulted on every I/O: the Plan's DevRead
	// and DevWrite sites inject hard I/O errors (detail is the decimal
	// byte offset, so rules can target one location), and a non-zero
	// DevTornWrite lag draw persists only that many bytes of a write
	// before failing it — the torn page a power cut leaves behind.
	Faults *faultinject.Plan
}

// Stats counts device operations.
type Stats struct {
	reads, writes           atomic.Int64
	bytesRead, bytesWritten atomic.Int64
}

// Reads returns the number of read requests.
func (s *Stats) Reads() int64 { return s.reads.Load() }

// Writes returns the number of write requests.
func (s *Stats) Writes() int64 { return s.writes.Load() }

// BytesRead returns the total bytes read.
func (s *Stats) BytesRead() int64 { return s.bytesRead.Load() }

// BytesWritten returns the total bytes written.
func (s *Stats) BytesWritten() int64 { return s.bytesWritten.Load() }

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.reads.Store(0)
	s.writes.Store(0)
	s.bytesRead.Store(0)
	s.bytesWritten.Store(0)
}

// MemDevice is an in-memory Device implementing the simulation in Config.
type MemDevice struct {
	cfg   Config
	scale *iomodel.Scale
	rnd   *iomodel.Rand
	stats Stats

	mu   sync.RWMutex
	data []byte
}

var _ Device = (*MemDevice)(nil)

// NewMem returns a MemDevice with the given configuration.
func NewMem(cfg Config) *MemDevice {
	scale := cfg.Scale
	if scale == nil {
		scale = iomodel.NewScale(0)
	}
	return &MemDevice{
		cfg:   cfg,
		scale: scale,
		rnd:   iomodel.NewRand(cfg.Seed),
		data:  make([]byte, cfg.Capacity),
	}
}

// Stats exposes the operation counters.
func (d *MemDevice) Stats() *Stats { return &d.stats }

// Size implements Device.
func (d *MemDevice) Size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.data))
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(ctx context.Context, p []byte, off int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if off < 0 {
		return fmt.Errorf("read at %d: %w", off, ErrOutOfRange)
	}
	if err := d.cfg.Faults.Check(faultinject.DevRead, strconv.FormatInt(off, 10)); err != nil {
		return fmt.Errorf("read at %d: %w", off, err)
	}
	d.stats.reads.Add(1)
	d.stats.bytesRead.Add(int64(len(p)))
	d.scale.Sleep(d.cfg.ReadLatency.Duration(len(p), d.rnd))
	d.cfg.Network.Acquire(len(p))
	d.cfg.Queue.Acquire(len(p))

	d.mu.RLock()
	defer d.mu.RUnlock()
	if off+int64(len(p)) > int64(len(d.data)) {
		return fmt.Errorf("read [%d,%d) of %d: %w", off, off+int64(len(p)), len(d.data), ErrOutOfRange)
	}
	copy(p, d.data[off:])
	return nil
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(ctx context.Context, p []byte, off int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if off < 0 {
		return fmt.Errorf("write at %d: %w", off, ErrOutOfRange)
	}
	detail := strconv.FormatInt(off, 10)
	if err := d.cfg.Faults.Check(faultinject.DevWrite, detail); err != nil {
		return fmt.Errorf("write at %d: %w", off, err)
	}
	// A torn write persists a prefix of the payload and then fails, the
	// way a crash mid-write leaves a partial page on disk.
	torn := -1
	if n := d.cfg.Faults.LagAt(faultinject.DevTornWrite, detail); n > 0 && n < len(p) {
		torn = n
	}
	d.stats.writes.Add(1)
	d.stats.bytesWritten.Add(int64(len(p)))
	d.scale.Sleep(d.cfg.WriteLatency.Duration(len(p), d.rnd))
	d.cfg.Network.Acquire(len(p))
	d.cfg.Queue.Acquire(len(p))

	d.mu.Lock()
	defer d.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(d.data)) {
		if !d.cfg.Growable {
			return fmt.Errorf("write [%d,%d) of %d: %w", off, end, len(d.data), ErrOutOfRange)
		}
		grown := make([]byte, end)
		copy(grown, d.data)
		d.data = grown
	}
	if torn >= 0 {
		copy(d.data[off:], p[:torn])
		return fmt.Errorf("write at %d: torn after %d of %d bytes: %w",
			off, torn, len(p), faultinject.ErrInjected)
	}
	copy(d.data[off:], p)
	return nil
}
