package blockdev

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cloudiq/internal/faultinject"
	"cloudiq/internal/iomodel"
)

func ctxb() context.Context { return context.Background() }

func TestReadWriteRoundTrip(t *testing.T) {
	d := NewMem(Config{Capacity: 1024})
	want := []byte("columnar")
	if err := d.WriteAt(ctxb(), want, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := d.ReadAt(ctxb(), got, 100); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("ReadAt = %q, want %q", got, want)
	}
}

func TestOutOfRange(t *testing.T) {
	d := NewMem(Config{Capacity: 10})
	if err := d.WriteAt(ctxb(), make([]byte, 20), 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("oversized write err = %v, want ErrOutOfRange", err)
	}
	if err := d.ReadAt(ctxb(), make([]byte, 5), 8); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overhanging read err = %v, want ErrOutOfRange", err)
	}
	if err := d.ReadAt(ctxb(), make([]byte, 1), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative-offset read err = %v, want ErrOutOfRange", err)
	}
	if err := d.WriteAt(ctxb(), make([]byte, 1), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative-offset write err = %v, want ErrOutOfRange", err)
	}
}

func TestGrowableDevice(t *testing.T) {
	d := NewMem(Config{Capacity: 4, Growable: true})
	if err := d.WriteAt(ctxb(), []byte("abcdef"), 2); err != nil {
		t.Fatal(err)
	}
	if got := d.Size(); got != 8 {
		t.Fatalf("Size = %d, want 8", got)
	}
	got := make([]byte, 6)
	if err := d.ReadAt(ctxb(), got, 2); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdef" {
		t.Fatalf("ReadAt = %q", got)
	}
}

func TestStats(t *testing.T) {
	d := NewMem(Config{Capacity: 100})
	_ = d.WriteAt(ctxb(), make([]byte, 10), 0)
	_ = d.ReadAt(ctxb(), make([]byte, 4), 0)
	s := d.Stats()
	if s.Writes() != 1 || s.Reads() != 1 || s.BytesWritten() != 10 || s.BytesRead() != 4 {
		t.Fatalf("stats: w=%d r=%d bw=%d br=%d", s.Writes(), s.Reads(), s.BytesWritten(), s.BytesRead())
	}
	s.Reset()
	if s.Writes() != 0 || s.BytesRead() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestContextCancellation(t *testing.T) {
	d := NewMem(Config{Capacity: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.ReadAt(ctx, make([]byte, 1), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadAt err = %v", err)
	}
	if err := d.WriteAt(ctx, make([]byte, 1), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteAt err = %v", err)
	}
}

func TestInjectedWriteFailure(t *testing.T) {
	plan := faultinject.New(1)
	plan.Always(faultinject.DevWrite.With("5")) // only offset 5 faults
	d := NewMem(Config{Capacity: 10, Faults: plan})
	if err := d.WriteAt(ctxb(), []byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(ctxb(), []byte{1}, 5); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

func TestInjectedReadFailure(t *testing.T) {
	plan := faultinject.New(1)
	plan.FailNext(faultinject.DevRead, 1)
	d := NewMem(Config{Capacity: 10, Faults: plan})
	if err := d.ReadAt(ctxb(), make([]byte, 1), 0); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if err := d.ReadAt(ctxb(), make([]byte, 1), 0); err != nil {
		t.Fatalf("read after one-shot fault: %v", err)
	}
}

// A torn write persists a prefix of the payload and fails the request.
func TestTornWritePersistsPrefix(t *testing.T) {
	plan := faultinject.New(1)
	plan.Lag(faultinject.DevTornWrite, 3, 3)
	d := NewMem(Config{Capacity: 10, Faults: plan})
	err := d.WriteAt(ctxb(), []byte{1, 2, 3, 4, 5}, 0)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected torn write", err)
	}
	plan.Clear(faultinject.DevTornWrite)
	got := make([]byte, 5)
	if err := d.ReadAt(ctxb(), got, 0); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("data after torn write = %v, want %v", got, want)
		}
	}
}

func TestQueueContentionSlowsReadsUnderWriteLoad(t *testing.T) {
	// The OCM brown-out in miniature: with a shared device queue, reads
	// charge more simulated time when they queue behind writes.
	scale := iomodel.NewScale(0)
	queue := iomodel.NewResource(scale, time.Millisecond, 0)
	d := NewMem(Config{Capacity: 1 << 20, Queue: queue, Scale: scale})

	_ = d.ReadAt(ctxb(), make([]byte, 8), 0)
	if got := scale.Charged(); got != time.Millisecond {
		t.Fatalf("lone read charged %v, want 1ms", got)
	}
	scale.ResetCharged()
	for i := 0; i < 9; i++ {
		_ = d.WriteAt(ctxb(), make([]byte, 8), int64(i*8))
	}
	_ = d.ReadAt(ctxb(), make([]byte, 8), 0)
	if got, want := scale.Charged(), 10*time.Millisecond; got != want {
		t.Fatalf("read behind 9 writes charged %v total, want %v", got, want)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	d := NewMem(Config{Capacity: 1 << 16})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			buf := []byte{byte(w)}
			for i := 0; i < 500; i++ {
				if err := d.WriteAt(ctxb(), buf, int64(w*1000+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 1)
			for i := 0; i < 500; i++ {
				if err := d.ReadAt(ctxb(), buf, int64(w*1000+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPropertyWriteReadIdentity(t *testing.T) {
	d := NewMem(Config{Capacity: 0, Growable: true})
	f := func(data []byte, off uint16) bool {
		if err := d.WriteAt(ctxb(), data, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := d.ReadAt(ctxb(), got, int64(off)); err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
