package cloudcost

import (
	"math"
	"testing"
	"time"
)

func TestStorageMonthlyReproducesTable4Ratios(t *testing.T) {
	p := Default2020()
	// The paper's Table 4 prices ~518 GB of compressed TPC-H SF1000 data:
	// S3 $12.05, EBS $51.80, EFS $155.40 — ratios ~1 : 4.3 : 13.
	bytes := int64(518 * (1 << 30))
	s3, err := p.StorageMonthly("s3", bytes)
	if err != nil {
		t.Fatal(err)
	}
	ebs, _ := p.StorageMonthly("ebs", bytes)
	efs, _ := p.StorageMonthly("efs", bytes)
	if math.Abs(s3-11.91) > 0.2 || math.Abs(ebs-51.8) > 0.2 || math.Abs(efs-155.4) > 0.5 {
		t.Fatalf("monthly costs = %.2f / %.2f / %.2f", s3, ebs, efs)
	}
	if ebs/s3 < 4 || ebs/s3 > 4.6 {
		t.Fatalf("EBS/S3 ratio = %.2f", ebs/s3)
	}
	if efs/s3 < 12 || efs/s3 > 14 {
		t.Fatalf("EFS/S3 ratio = %.2f", efs/s3)
	}
	if _, err := p.StorageMonthly("floppy", 1); err == nil {
		t.Fatal("unknown volume accepted")
	}
}

func TestRequests(t *testing.T) {
	p := Default2020()
	// The paper: 2,807,368 averted GETs were worth $1.12.
	got := p.Requests(0, 2_807_368)
	if math.Abs(got-1.12) > 0.01 {
		t.Fatalf("averted GET savings = %.4f, want ~1.12", got)
	}
	if p.Requests(1000, 0) != 0.005 {
		t.Fatalf("PUT pricing wrong")
	}
}

func TestCompute(t *testing.T) {
	p := Default2020()
	got, err := p.Compute("m5ad.24xlarge", 2*time.Hour)
	if err != nil || math.Abs(got-10.848) > 1e-9 {
		t.Fatalf("compute = %v, %v", got, err)
	}
	if _, err := p.Compute("cray-1", time.Hour); err == nil {
		t.Fatal("unknown instance accepted")
	}
}
