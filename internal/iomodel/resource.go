package iomodel

import (
	"sync"
	"time"
)

// Resource models a serially shared capacity such as a device's aggregate
// bandwidth, a volume's provisioned IOPS, or an instance's network link.
// Each acquisition holds the resource for a service time of
// perOp + transfer(n bytes), so concurrent callers queue behind one another
// exactly as requests queue at a saturated device. Latency that does not
// consume shared capacity (e.g. request round-trip time) should be slept
// outside the resource so that parallel requests overlap it.
type Resource struct {
	mu          sync.Mutex
	scale       *Scale
	perOp       time.Duration
	bytesPerSec float64

	ops   int64
	bytes int64
}

// NewResource builds a Resource. perOp is the fixed service time consumed by
// every operation (1/IOPS for an IOPS-capped volume); bytesPerSec is the
// aggregate transfer capacity (0 = unlimited). scale must be non-nil.
func NewResource(scale *Scale, perOp time.Duration, bytesPerSec float64) *Resource {
	return &Resource{scale: scale, perOp: perOp, bytesPerSec: bytesPerSec}
}

// Acquire occupies the resource for the service time of an n-byte operation.
func (r *Resource) Acquire(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ops++
	r.bytes += int64(n)
	d := r.perOp + TransferTime(n, r.bytesPerSec)
	if d > 0 {
		r.scale.Sleep(d)
	}
	r.mu.Unlock()
}

// Stats reports the operations and bytes served so far.
func (r *Resource) Stats() (ops, bytes int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops, r.bytes
}

// SetRates replaces the per-op service time and transfer capacity. It is
// used by models whose capacity depends on state (e.g. EFS throughput
// scaling with stored bytes).
func (r *Resource) SetRates(perOp time.Duration, bytesPerSec float64) {
	r.mu.Lock()
	r.perOp = perOp
	r.bytesPerSec = bytesPerSec
	r.mu.Unlock()
}
