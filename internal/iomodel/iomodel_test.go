package iomodel

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestScaleZeroFactorDoesNotSleep(t *testing.T) {
	s := NewScale(0)
	//lint:ignore noclock this test measures that Sleep returns without real elapsed time
	start := time.Now()
	s.Sleep(10 * time.Hour)
	//lint:ignore noclock real wall-clock elapsed time is the property under test
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Sleep with zero factor blocked for %v", elapsed)
	}
	if got := s.Charged(); got != 10*time.Hour {
		t.Fatalf("Charged = %v, want 10h", got)
	}
}

func TestScaleChargesAccumulate(t *testing.T) {
	s := NewScale(0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got, want := s.Charged(), 1600*time.Millisecond; got != want {
		t.Fatalf("Charged = %v, want %v", got, want)
	}
	s.ResetCharged()
	if got := s.Charged(); got != 0 {
		t.Fatalf("Charged after reset = %v, want 0", got)
	}
}

func TestScaleSleepActuallySleeps(t *testing.T) {
	s := NewScale(1)
	//lint:ignore noclock this test verifies Sleep blocks for real wall-clock time
	start := time.Now()
	s.Sleep(20 * time.Millisecond)
	//lint:ignore noclock real wall-clock elapsed time is the property under test
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("Sleep(20ms) at factor 1 returned after %v", elapsed)
	}
}

func TestScaleSetFactor(t *testing.T) {
	s := NewScale(0.5)
	if got := s.Factor(); got != 0.5 {
		t.Fatalf("Factor = %v, want 0.5", got)
	}
	s.Set(0)
	if got := s.Factor(); got != 0 {
		t.Fatalf("Factor after Set(0) = %v, want 0", got)
	}
}

func TestLatencyDuration(t *testing.T) {
	l := Latency{Base: time.Millisecond, BytesPerSec: 1e6} // 1 µs per byte
	if got, want := l.Duration(0, nil), time.Millisecond; got != want {
		t.Fatalf("Duration(0) = %v, want %v", got, want)
	}
	if got, want := l.Duration(1000, nil), 2*time.Millisecond; got != want {
		t.Fatalf("Duration(1000) = %v, want %v", got, want)
	}
}

func TestLatencyJitterBounded(t *testing.T) {
	l := Latency{Base: time.Millisecond, Jitter: 0.1}
	rnd := NewRand(42)
	for i := 0; i < 1000; i++ {
		d := l.Duration(0, rnd)
		if d < 900*time.Microsecond || d > 1100*time.Microsecond {
			t.Fatalf("jittered duration %v outside ±10%% of 1ms", d)
		}
	}
}

func TestLatencyNeverNegative(t *testing.T) {
	f := func(base int32, n uint16) bool {
		l := Latency{Base: time.Duration(base), BytesPerSec: 1e9, Jitter: 2}
		return l.Duration(int(n), NewRand(int64(base))) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTime(t *testing.T) {
	// Moving 1 GiB at 1 GiB/s takes one second; sub-nanosecond per-byte
	// rates must not truncate to zero for multi-byte transfers.
	if got := TransferTime(1<<30, 1<<30); got != time.Second {
		t.Fatalf("TransferTime(1GiB, 1GiB/s) = %v, want 1s", got)
	}
	if got := TransferTime(4096, 1.125e9); got <= 0 { // 9 Gbit/s link
		t.Fatalf("TransferTime(4096, 9Gbit/s) = %v, want > 0", got)
	}
	if got := TransferTime(100, 0); got != 0 {
		t.Fatalf("TransferTime with zero rate = %v, want 0", got)
	}
	if got := TransferTime(-5, 1e6); got != 0 {
		t.Fatalf("TransferTime with negative size = %v, want 0", got)
	}
}

func TestResourceSerializesCapacity(t *testing.T) {
	scale := NewScale(0)
	r := NewResource(scale, time.Millisecond, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Acquire(100)
			}
		}()
	}
	wg.Wait()
	ops, bytes := r.Stats()
	if ops != 400 {
		t.Fatalf("ops = %d, want 400", ops)
	}
	if bytes != 400*100 {
		t.Fatalf("bytes = %d, want %d", bytes, 400*100)
	}
	// Each op charges 1ms of simulated time.
	if got, want := scale.Charged(), 400*time.Millisecond; got != want {
		t.Fatalf("Charged = %v, want %v", got, want)
	}
}

func TestResourceNilIsNoop(t *testing.T) {
	var r *Resource
	r.Acquire(10) // must not panic
}

func TestResourceSetRates(t *testing.T) {
	scale := NewScale(0)
	r := NewResource(scale, 0, 1e9) // 1 ns per byte
	r.Acquire(1000)
	if got := scale.Charged(); got != 1000*time.Nanosecond {
		t.Fatalf("Charged = %v, want 1µs", got)
	}
	r.SetRates(0, 0.5e9) // 2 ns per byte
	r.Acquire(1000)
	if got := scale.Charged(); got != 3000*time.Nanosecond {
		t.Fatalf("Charged = %v, want 3µs", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed Rands diverged")
		}
	}
	if a.Int63n(10) < 0 {
		t.Fatal("Int63n returned negative")
	}
}
