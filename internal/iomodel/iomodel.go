// Package iomodel provides the timing substrate shared by the simulated
// storage devices: latency models, token-bucket rate limits for IOPS and
// bandwidth, and a global time scale that maps simulated I/O service time to
// real sleeping so that concurrency effects (parallel I/O masking latency,
// bandwidth saturation) remain physically real while experiments stay fast.
package iomodel

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Scale maps simulated durations to real sleeps. A factor of 0 disables
// sleeping entirely (unit-test mode); a factor of 0.001 makes one simulated
// second cost one real millisecond. Scale also accumulates the total
// simulated time charged, which experiment harnesses report as "simulated
// seconds" regardless of the factor in effect.
type Scale struct {
	factor  atomic.Uint64 // math.Float64bits of the factor
	charged atomic.Int64  // total simulated nanoseconds charged
}

// NewScale returns a Scale with the given factor.
func NewScale(factor float64) *Scale {
	s := &Scale{}
	s.Set(factor)
	return s
}

// Set changes the scale factor.
func (s *Scale) Set(factor float64) {
	s.factor.Store(math.Float64bits(factor))
}

// Factor reports the current scale factor.
func (s *Scale) Factor() float64 {
	return math.Float64frombits(s.factor.Load())
}

// Sleep charges d of simulated time and blocks for d scaled by the factor.
// It returns immediately (after charging) when the factor is zero or d is
// non-positive.
func (s *Scale) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.charged.Add(int64(d))
	f := s.Factor()
	if f <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * f))
}

// Charged reports the total simulated time charged through this Scale.
func (s *Scale) Charged() time.Duration {
	return time.Duration(s.charged.Load())
}

// ResetCharged zeroes the charged-time accumulator.
func (s *Scale) ResetCharged() {
	s.charged.Store(0)
}

// Rand is a concurrency-safe seeded uniform source shared by the device
// models so that experiments are reproducible.
type Rand struct {
	mu  sync.Mutex
	src *rand.Rand
}

// NewRand returns a Rand seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 {
	r.mu.Lock()
	v := r.src.Float64()
	r.mu.Unlock()
	return v
}

// Int63n returns a uniform value in [0,n).
func (r *Rand) Int63n(n int64) int64 {
	r.mu.Lock()
	v := r.src.Int63n(n)
	r.mu.Unlock()
	return v
}

// Latency describes the service time of a single I/O against a device:
// a fixed per-request cost plus a transfer cost derived from a throughput
// rate, with optional uniform jitter expressed as a fraction of the base
// (0.1 = ±10%).
type Latency struct {
	Base        time.Duration // per-request latency
	BytesPerSec float64       // transfer rate; 0 means transfers are free
	Jitter      float64       // fraction of Base applied as ± uniform jitter
}

// Duration computes the service time of an I/O of n bytes. rnd may be nil,
// in which case no jitter is applied.
func (l Latency) Duration(n int, rnd *Rand) time.Duration {
	d := l.Base + TransferTime(n, l.BytesPerSec)
	if l.Jitter > 0 && rnd != nil {
		j := (rnd.Float64()*2 - 1) * l.Jitter * float64(l.Base)
		d += time.Duration(j)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// TransferTime returns the time to move n bytes at the given rate. A
// non-positive rate means the transfer is instantaneous.
func TransferTime(n int, bytesPerSecond float64) time.Duration {
	if bytesPerSecond <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSecond * float64(time.Second))
}
