package ocm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/faultinject"
	"cloudiq/internal/objstore"
)

func ctxb() context.Context { return context.Background() }

func newCache(t *testing.T, deviceBytes int64, store objstore.Store) *Cache {
	t.Helper()
	dev := blockdev.NewMem(blockdev.Config{Capacity: deviceBytes})
	c, err := New(Config{Device: dev, Store: store, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for ", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadThroughMissThenHit(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	_ = store.Put(ctxb(), "k1", []byte("contents"))
	c := newCache(t, 1<<16, store)

	got, err := c.Get(ctxb(), "k1")
	if err != nil || string(got) != "contents" {
		t.Fatalf("miss read = %q, %v", got, err)
	}
	// The fill is asynchronous; wait for it to land.
	waitFor(t, func() bool { return c.Len() == 1 }, "cache fill")

	storeGets := store.Metrics().Gets()
	got, err = c.Get(ctxb(), "k1")
	if err != nil || string(got) != "contents" {
		t.Fatalf("hit read = %q, %v", got, err)
	}
	if store.Metrics().Gets() != storeGets {
		t.Fatal("cache hit still touched the object store")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
}

func TestGetMissingKeyPropagates(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	c := newCache(t, 1<<16, store)
	if _, err := c.Get(ctxb(), "ghost"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutBackIsAsyncDurableAfterFlush(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	c := newCache(t, 1<<16, store)
	if err := c.PutBack(ctxb(), "page1", []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushForCommit(ctxb(), []string{"page1"}); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(ctxb(), "page1")
	if err != nil || string(got) != "dirty" {
		t.Fatalf("store after flush = %q, %v", got, err)
	}
	// The written page is readable through the cache without a store GET.
	gets := store.Metrics().Gets()
	got, err = c.Get(ctxb(), "page1")
	if err != nil || string(got) != "dirty" || store.Metrics().Gets() != gets {
		t.Fatalf("cached read-back = %q, %v (gets %d->%d)", got, err, gets, store.Metrics().Gets())
	}
}

func TestPutThroughSynchronouslyDurable(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	c := newCache(t, 1<<16, store)
	if err := c.PutThrough(ctxb(), "p", []byte("commit")); err != nil {
		t.Fatal(err)
	}
	// Durable immediately, no flush needed.
	got, err := store.Get(ctxb(), "p")
	if err != nil || string(got) != "commit" {
		t.Fatalf("store = %q, %v", got, err)
	}
	waitFor(t, func() bool { return c.Len() == 1 }, "async cache fill")
}

func TestFlushForCommitSkipsUnknownAndDurableKeys(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	c := newCache(t, 1<<16, store)
	_ = c.PutThrough(ctxb(), "durable", []byte("x"))
	if err := c.FlushForCommit(ctxb(), []string{"durable", "never-seen"}); err != nil {
		t.Fatal(err)
	}
}

func TestUploadFailureRollsBackCommit(t *testing.T) {
	plan := faultinject.New(1)
	plan.Always(faultinject.ObjPut.With("bad"))
	store := objstore.NewMem(objstore.Config{Faults: plan})
	c := newCache(t, 1<<16, store)
	if err := c.PutBack(ctxb(), "bad", []byte("x")); err != nil {
		t.Fatal(err) // write-back itself succeeds (local write)
	}
	if err := c.FlushForCommit(ctxb(), []string{"bad"}); !errors.Is(err, ErrUploadFailed) {
		t.Fatalf("err = %v, want ErrUploadFailed", err)
	}
	if got := c.Stats().UploadFails; got != 1 {
		t.Fatalf("UploadFails = %d, want 1", got)
	}
}

func TestFailedEntryDoesNotServeReads(t *testing.T) {
	plan := faultinject.New(1)
	plan.Always(faultinject.ObjPut.With("bad"))
	store := objstore.NewMem(objstore.Config{Faults: plan})
	c := newCache(t, 1<<16, store)
	_ = c.PutBack(ctxb(), "bad", []byte("x"))
	waitFor(t, func() bool { return c.Stats().UploadFails > 0 }, "upload failure")
	// The page never reached the store and must not be readable.
	if _, err := c.Get(ctxb(), "bad"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("read of failed page: err = %v, want ErrNotFound", err)
	}
}

func TestLocalDeviceFailureDegradesToDirectWrite(t *testing.T) {
	// §4: if the write to locally attached storage fails, the error is
	// ignored and the page is written directly to the object store.
	dev := blockdev.NewMem(blockdev.Config{
		Capacity: 1 << 16,
		Faults:   faultinject.New(1).Always(faultinject.DevWrite),
	})
	store := objstore.NewMem(objstore.Config{})
	c, err := New(Config{Device: dev, Store: store, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if err := c.PutBack(ctxb(), "p", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Get(ctxb(), "p"); err != nil || string(got) != "x" {
		t.Fatalf("store = %q, %v", got, err)
	}
	if c.Len() != 0 {
		t.Fatal("failed local write left an index entry")
	}
}

func TestLRUEviction(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	// Device fits exactly 4 one-block entries.
	c := newCache(t, 4*64, store)
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		_ = store.Put(ctxb(), key, []byte{byte(i)})
		_, _ = c.Get(ctxb(), key)
		waitFor(t, func() bool { return c.Len() == i+1 }, "fill")
	}
	// Touch k0 so k1 becomes the LRU victim.
	_, _ = c.Get(ctxb(), "k0")
	_ = store.Put(ctxb(), "k4", []byte{4})
	_, _ = c.Get(ctxb(), "k4")
	waitFor(t, func() bool { return c.Stats().Evictions >= 1 }, "eviction")

	// k0 must still be cached; k1 must have been evicted.
	gets := store.Metrics().Gets()
	_, _ = c.Get(ctxb(), "k0")
	if store.Metrics().Gets() != gets {
		t.Fatal("k0 was evicted despite being recently used")
	}
	_, _ = c.Get(ctxb(), "k1")
	if store.Metrics().Gets() != gets+1 {
		t.Fatal("k1 unexpectedly still cached")
	}
}

// A dropped write-back upload (the queue a crashed process never drained)
// must surface through FlushForCommit, not silently commit.
func TestUploadQueueDropOnCrash(t *testing.T) {
	plan := faultinject.New(11)
	plan.FailNext(faultinject.OCMUploadDrop, 1)
	store := objstore.NewMem(objstore.Config{})
	dev := blockdev.NewMem(blockdev.Config{Capacity: 1 << 16})
	c, err := New(Config{Device: dev, Store: store, BlockSize: 64, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if err := c.PutBack(ctxb(), "dropped", []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Stats().UploadFails > 0 }, "drop")
	if err := c.FlushForCommit(ctxb(), []string{"dropped"}); !errors.Is(err, ErrUploadFailed) {
		t.Fatalf("err = %v, want ErrUploadFailed", err)
	}
	if store.Len() != 0 {
		t.Fatal("dropped upload reached the store")
	}
	// A fresh write-back after the drop succeeds (site was one-shot).
	if err := c.PutBack(ctxb(), "ok", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushForCommit(ctxb(), []string{"ok"}); err != nil {
		t.Fatal(err)
	}
}

// gatedStore blocks Puts of one key until released, so tests can hold an
// upload in flight while they probe the cache's eviction behaviour.
type gatedStore struct {
	*objstore.MemStore
	gateKey string
	blocked atomic.Int64
	release chan struct{}
}

func (g *gatedStore) Put(ctx context.Context, key string, data []byte) error {
	if key == g.gateKey {
		g.blocked.Add(1)
		<-g.release
	}
	return g.MemStore.Put(ctx, key, data)
}

func TestWriteBackEntriesNotEvictableUntilUploaded(t *testing.T) {
	// Make uploads hang until released, then fill the device: eviction
	// must not touch the pending entries.
	store := &gatedStore{
		MemStore: objstore.NewMem(objstore.Config{}),
		gateKey:  "pending",
		release:  make(chan struct{}),
	}
	c := newCache(t, 2*64, store) // two blocks total
	if err := c.PutBack(ctxb(), "pending", []byte("p")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return store.blocked.Load() > 0 }, "upload to start")

	// Fill the remaining block, then force an allocation that requires
	// evicting: only the second entry is evictable.
	_ = store.Put(ctxb(), "a", []byte("a"))
	_, _ = c.Get(ctxb(), "a")
	waitFor(t, func() bool { return c.Len() == 2 }, "fill a")
	_ = store.Put(ctxb(), "b", []byte("b"))
	_, _ = c.Get(ctxb(), "b")
	waitFor(t, func() bool { return c.Stats().Evictions+c.Stats().FillDrops >= 1 }, "eviction or drop")

	close(store.release)
	if err := c.FlushForCommit(ctxb(), []string{"pending"}); err != nil {
		t.Fatal(err)
	}
	if got, err := store.Get(ctxb(), "pending"); err != nil || string(got) != "p" {
		t.Fatalf("pending entry lost: %q, %v", got, err)
	}
}

func TestDeleteInvalidatesAndRemoves(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	c := newCache(t, 1<<16, store)
	_ = c.PutBack(ctxb(), "k", []byte("x"))
	if err := c.FlushForCommit(ctxb(), []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctxb(), "k"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("entry still indexed after delete")
	}
	if _, err := store.Get(ctxb(), "k"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("store still has the object: %v", err)
	}
	// Deleting an uncached key is fine.
	if err := c.Delete(ctxb(), "ghost"); err != nil {
		t.Fatal(err)
	}
}

func TestClosedCacheRejectsOperations(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	c := newCache(t, 1<<16, store)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctxb(), "k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get err = %v", err)
	}
	if err := c.PutBack(ctxb(), "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("PutBack err = %v", err)
	}
	if err := c.FlushForCommit(ctxb(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("FlushForCommit err = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}

func TestCloseDrainsPendingUploads(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	c := newCache(t, 1<<16, store)
	for i := 0; i < 50; i++ {
		if err := c.PutBack(ctxb(), fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := store.Len(); got != 50 {
		t.Fatalf("store has %d objects after Close, want 50", got)
	}
}

func TestNewValidation(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	if _, err := New(Config{Store: store}); err == nil {
		t.Fatal("nil device accepted")
	}
	dev := blockdev.NewMem(blockdev.Config{Capacity: 10})
	if _, err := New(Config{Device: dev}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(Config{Device: dev, Store: store, BlockSize: 4096}); err == nil {
		t.Fatal("device smaller than a block accepted")
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	c := newCache(t, 1<<14, store) // small device to force evictions
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				var err error
				if i%2 == 0 {
					err = c.PutBack(ctxb(), key, []byte(key))
				} else {
					err = c.PutThrough(ctxb(), key, []byte(key))
				}
				if err != nil {
					t.Error(err)
					return
				}
				if i%10 == 9 {
					var keys []string
					for j := i - 9; j <= i; j++ {
						keys = append(keys, fmt.Sprintf("w%d-%d", w, j))
					}
					if err := c.FlushForCommit(ctxb(), keys); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := store.Len(); got != 800 {
		t.Fatalf("store has %d objects, want 800", got)
	}
	// Every object is readable with correct contents.
	for w := 0; w < 8; w++ {
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("w%d-%d", w, i)
			got, err := c.Get(ctxb(), key)
			if err != nil || string(got) != key {
				t.Fatalf("Get(%s) = %q, %v", key, got, err)
			}
		}
	}
}
