// Package ocm implements the Object Cache Manager of §4: a disk-based
// read/write cache between SAP IQ's buffer manager and the object store,
// backed by a locally attached SSD or HDD. It supports read-through reads,
// write-back and write-through writes, a single LRU list shared by reads and
// writes, prioritized flushing for committing transactions
// (FlushForCommit), and the §4 durability rules: a locally-attached-storage
// failure is ignored and the page goes straight to the object store, while
// an object-store failure is retried and ultimately rolls the transaction
// back. Because pages are never written twice under the same key, a page
// read through the OCM can never be invalidated by a later write — caching
// primarily accelerates reads.
package ocm

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/faultinject"
	"cloudiq/internal/freelist"
	"cloudiq/internal/objstore"
	"cloudiq/internal/pageio"
	"cloudiq/internal/trace"
)

// ErrClosed is returned by operations on a closed cache.
var ErrClosed = errors.New("ocm: cache closed")

// ErrUploadFailed is reported by FlushForCommit when a page could not be
// uploaded within the retry budget; the caller rolls the transaction back.
var ErrUploadFailed = errors.New("ocm: upload failed")

// Config parameterizes a Cache.
type Config struct {
	// Device is the locally attached SSD/HDD.
	Device blockdev.Device
	// Store is the underlying object store.
	Store objstore.Store
	// BlockSize is the cache's allocation granularity. Zero selects 4096.
	BlockSize int
	// Workers is the number of asynchronous upload/fill workers. Zero
	// selects 4.
	Workers int
	// UploadRetries bounds store-upload attempts per page. Zero selects 3.
	UploadRetries int
	// Faults, when non-nil, arms the OCMUploadDrop site: a fault drops a
	// queued write-back upload without attempting the store — the page a
	// crashed process never drained from its write queue. The entry moves
	// to the failed state, so a later FlushForCommit surfaces the loss
	// (and rolls the transaction back) instead of silently committing.
	Faults *faultinject.Plan
	// Stats, when non-nil, receives the cache's own device and store
	// traffic under the "ocmdev" and "ocmstore" layers.
	Stats *pageio.StatsRegistry
	// Trace, when non-nil, records spans for the cache's asynchronous work:
	// each background upload becomes a root span carrying its queue-wait
	// time (write-back jobs cannot inherit a caller's context), and the
	// device/store pipelines open per-operation child spans. This is what
	// separates queue-wait from device and store time when the upload queue
	// browns out under Experiment 2.
	Trace *trace.Tracer
}

// Stats reports cache effectiveness (Table 5) and internal behaviour.
type Stats struct {
	Hits        int64 // reads served from the local device
	Misses      int64 // reads that went to the object store
	Evictions   int64 // entries evicted to make room
	Uploads     int64 // successful asynchronous/synchronous uploads
	UploadFails int64 // uploads abandoned after the retry budget
	FillDrops   int64 // read-through fills skipped (no space / duplicate)
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type entryState int

const (
	stateCached    entryState = iota // on device, in LRU
	stateUploading                   // on device, upload pending; pinned out of LRU
	stateFailed                      // upload abandoned; awaiting FlushForCommit error
)

type entry struct {
	key    string
	off    uint64 // first block on the device
	blocks uint64
	size   int
	state  entryState
	pins   int
	lru    *list.Element // nil while not in the LRU
	data   []byte        // retained until upload completes (uploading state)
	err    error         // terminal upload error (failed state)
}

type uploadJob struct {
	ent *entry
	// enqueuedAt is the tracer clock at enqueue time; the worker's dequeue
	// stamp minus this is the job's queue-wait. Zero when tracing is off.
	enqueuedAt time.Duration
	// depth is the queue length ahead of this job at enqueue time — a
	// clock-free brown-out signal that survives coarse time scales.
	depth int
}

// Cache is the Object Cache Manager. It is safe for concurrent use. All of
// its device and store I/O flows through pageio handlers: dev wraps the
// local device, up the backing store, and upload adds the §4 retry budget
// on top of up for write paths.
type Cache struct {
	cfg    Config
	free   *freelist.List
	dev    pageio.Handler
	up     pageio.Handler
	upload pageio.Handler

	mu      sync.Mutex
	cond    *sync.Cond // signals upload completions and queue activity
	index   map[string]*entry
	lruList *list.List // front = most recent
	queue   *list.List // upload queue; front = next
	stats   Stats
	closed  bool

	wg     sync.WaitGroup
	fillWG sync.WaitGroup
}

// New returns a running Cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Device == nil || cfg.Store == nil {
		return nil, fmt.Errorf("ocm: device and store are required")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.UploadRetries <= 0 {
		cfg.UploadRetries = 3
	}
	blocks := uint64(cfg.Device.Size()) / uint64(cfg.BlockSize)
	if blocks == 0 {
		return nil, fmt.Errorf("ocm: device smaller than one block")
	}
	up := pageio.Chain(pageio.NewStore(cfg.Store, nil), pageio.Trace("ocmstore"), pageio.Meter(cfg.Stats, "ocmstore"))
	c := &Cache{
		cfg:     cfg,
		free:    freelist.New(blocks),
		dev:     pageio.Chain(pageio.NewDevice(cfg.Device, nil), pageio.Trace("ocmdev"), pageio.Meter(cfg.Stats, "ocmdev")),
		up:      up,
		upload:  pageio.Chain(up, pageio.Retry(pageio.Policy{WriteAttempts: cfg.UploadRetries})),
		index:   make(map[string]*entry),
		lruList: list.New(),
		queue:   list.New(),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := 0; i < cfg.Workers; i++ {
		c.wg.Add(1)
		//lint:ignore detclosure upload workers drain a FIFO queue and join via wg on Close; WaitUploads is the only observation point and it barriers on the queue being empty
		go c.uploadWorker()
	}
	return c, nil
}

// Close drains the upload queue and stops the workers.
func (c *Cache) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
	return nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// blocksFor returns the blocks needed for n bytes.
func (c *Cache) blocksFor(n int) uint64 {
	if n == 0 {
		return 1
	}
	return uint64((n + c.cfg.BlockSize - 1) / c.cfg.BlockSize)
}

// allocate finds room for nblocks, evicting cold entries as needed. Called
// with c.mu held. Returns false if space cannot be found (e.g. everything is
// pinned or the object exceeds the device).
func (c *Cache) allocate(nblocks uint64) (uint64, bool) {
	for {
		off, err := c.free.Allocate(nblocks)
		if err == nil {
			return off, true
		}
		if !c.evictOne() {
			return 0, false
		}
	}
}

// evictOne removes the least recently used unpinned entry. Called with c.mu
// held.
func (c *Cache) evictOne() bool {
	for el := c.lruList.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*entry)
		if ent.pins > 0 || ent.state != stateCached {
			continue
		}
		c.removeLocked(ent)
		c.stats.Evictions++
		return true
	}
	return false
}

// removeLocked unlinks ent from the index, LRU and device space.
func (c *Cache) removeLocked(ent *entry) {
	if ent.lru != nil {
		c.lruList.Remove(ent.lru)
		ent.lru = nil
	}
	delete(c.index, ent.key)
	_ = c.free.Release(ent.off, ent.blocks)
}

// touch moves ent to the front of the LRU. Called with c.mu held.
func (c *Cache) touch(ent *entry) {
	if ent.lru != nil {
		c.lruList.MoveToFront(ent.lru)
	}
}

// Get implements read-through semantics: device hit, else object store with
// an asynchronous cache fill.
func (c *Cache) Get(ctx context.Context, key string) ([]byte, error) {
	ctx, sp := trace.Start(ctx, "ocm.get", trace.String("key", key))
	defer sp.End()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if ent, ok := c.index[key]; ok && ent.state != stateFailed {
		ent.pins++
		c.touch(ent)
		c.stats.Hits++
		off, size := ent.off, ent.size
		c.mu.Unlock()

		buf, err := c.dev.ReadPage(ctx, pageio.Ref{Off: int64(off) * int64(c.cfg.BlockSize), Len: size})

		c.mu.Lock()
		ent.pins--
		c.cond.Broadcast()
		if err == nil {
			c.mu.Unlock()
			sp.SetAttr("hit", "true")
			return buf, nil
		}
		// A failing local device is a performance problem, not a
		// correctness problem: fall through to the store.
	}
	c.stats.Misses++
	c.mu.Unlock()
	sp.SetAttr("hit", "false")

	data, err := c.up.ReadPage(ctx, pageio.Ref{Key: key})
	if err != nil {
		return nil, err
	}
	// Asynchronously cache for future lookups.
	cp := make([]byte, len(data))
	copy(cp, data)
	c.wg.Add(1)
	c.fillWG.Add(1)
	//lint:ignore detclosure the async fill is an idempotent single-key cache insert joined via fillWG/wg; cache content is order-insensitive
	go func() {
		defer c.wg.Done()
		defer c.fillWG.Done()
		c.fill(context.WithoutCancel(ctx), key, cp)
	}()
	return data, nil
}

// fill inserts data into the device cache (used by read-through and the
// asynchronous half of write-through). Errors are ignored per §4.
func (c *Cache) fill(ctx context.Context, key string, data []byte) {
	nblocks := c.blocksFor(len(data))
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if _, dup := c.index[key]; dup {
		c.stats.FillDrops++
		c.mu.Unlock()
		return
	}
	off, ok := c.allocate(nblocks)
	if !ok {
		c.stats.FillDrops++
		c.mu.Unlock()
		return
	}
	ent := &entry{key: key, off: off, blocks: nblocks, size: len(data), state: stateCached, pins: 1}
	c.index[key] = ent
	c.mu.Unlock()

	err := c.dev.WritePage(ctx, pageio.WriteReq{Ref: pageio.Ref{Off: int64(off) * int64(c.cfg.BlockSize)}, Data: data})

	c.mu.Lock()
	ent.pins--
	if err != nil {
		c.removeLocked(ent)
		c.stats.FillDrops++
	} else {
		ent.lru = c.lruList.PushFront(ent)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// PutBack is the write-back mode: the page is written synchronously to the
// local device and uploaded to the object store in the background. The entry
// joins the LRU only once the upload succeeds, so failed/rolled-back
// transactions do not pollute the cache.
func (c *Cache) PutBack(ctx context.Context, key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	nblocks := c.blocksFor(len(cp))

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	off, ok := c.allocate(nblocks)
	if !ok {
		// No local space: degrade to a synchronous store write.
		c.mu.Unlock()
		return c.putDirect(ctx, key, cp)
	}
	ent := &entry{key: key, off: off, blocks: nblocks, size: len(cp), state: stateUploading, pins: 1, data: cp}
	c.index[key] = ent
	c.mu.Unlock()

	if err := c.dev.WritePage(ctx, pageio.WriteReq{Ref: pageio.Ref{Off: int64(off) * int64(c.cfg.BlockSize)}, Data: cp}); err != nil {
		// §4: a local write failure is ignored and the page is written
		// directly to the object store.
		c.mu.Lock()
		c.removeLocked(ent)
		ent.pins--
		c.cond.Broadcast()
		c.mu.Unlock()
		return c.putDirect(ctx, key, cp)
	}

	c.mu.Lock()
	ent.pins--
	c.queue.PushBack(uploadJob{ent: ent, enqueuedAt: c.cfg.Trace.Now(), depth: c.queue.Len()})
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

// putDirect uploads synchronously; the upload pipeline's retry stage spends
// the §4 budget before giving up.
func (c *Cache) putDirect(ctx context.Context, key string, data []byte) error {
	err := c.upload.WritePage(ctx, pageio.WriteReq{Ref: pageio.Ref{Key: key}, Data: data})
	if err == nil {
		c.mu.Lock()
		c.stats.Uploads++
		c.mu.Unlock()
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	c.mu.Lock()
	c.stats.UploadFails++
	c.mu.Unlock()
	return fmt.Errorf("%w: key %s: %v", ErrUploadFailed, key, err)
}

// PutThrough is the write-through mode used during the commit phase: the
// page is written synchronously to the object store and cached
// asynchronously on the local device.
func (c *Cache) PutThrough(ctx context.Context, key string, data []byte) error {
	if err := c.putDirect(ctx, key, data); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.wg.Add(1)
	c.fillWG.Add(1)
	//lint:ignore detclosure the async fill is an idempotent single-key cache insert joined via fillWG/wg; cache content is order-insensitive
	go func() {
		defer c.wg.Done()
		defer c.fillWG.Done()
		c.fill(context.WithoutCancel(ctx), key, cp)
	}()
	return nil
}

// uploadWorker drains the background upload queue.
func (c *Cache) uploadWorker() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for c.queue.Len() == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.queue.Len() == 0 && c.closed {
			c.mu.Unlock()
			return
		}
		el := c.queue.Front()
		c.queue.Remove(el)
		job := el.Value.(uploadJob)
		ent := job.ent
		if ent.state != stateUploading {
			c.mu.Unlock()
			continue
		}
		ent.pins++
		data := ent.data
		c.mu.Unlock()

		// A write-back upload runs long after PutBack returned, so it
		// cannot inherit the writer's context: each job becomes its own
		// root span, and its queue_ns (dequeue minus enqueue stamp) is the
		// brown-out signal — store time stays flat while queue-wait grows.
		//lint:ignore ctxflow write-back uploads outlive every writer context by design; cancellation is Close draining the queue
		ctx := context.Background()
		var sp *trace.Span
		if c.cfg.Trace != nil {
			sp = c.cfg.Trace.Root("ocm.upload",
				trace.String("key", ent.key), trace.Int("bytes", int64(len(data))))
			sp.AddInt("queue_ns", int64(c.cfg.Trace.Now()-job.enqueuedAt))
			sp.AddInt("queue_depth", int64(job.depth))
			ctx = trace.With(ctx, sp)
		}

		var lastErr error
		ok := false
		if lastErr = c.cfg.Faults.Check(faultinject.OCMUploadDrop, ent.key); lastErr == nil {
			lastErr = c.upload.WritePage(ctx, pageio.WriteReq{Ref: pageio.Ref{Key: ent.key}, Data: data})
			ok = lastErr == nil
		}
		if sp != nil {
			if lastErr != nil {
				sp.SetAttr("err", lastErr.Error())
			}
			sp.End()
		}

		c.mu.Lock()
		ent.pins--
		ent.data = nil
		if ok {
			ent.state = stateCached
			ent.lru = c.lruList.PushFront(ent)
			c.stats.Uploads++
		} else {
			ent.state = stateFailed
			ent.err = lastErr
			c.stats.UploadFails++
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// FlushForCommit is the commit-phase signal: pending uploads for the given
// keys are moved to the head of the write queue and the call blocks until
// each has reached the object store. Any key whose upload was abandoned
// yields ErrUploadFailed (the caller rolls back). Keys with no pending
// upload are already durable and are skipped.
func (c *Cache) FlushForCommit(ctx context.Context, keys []string) error {
	ctx, sp := trace.Start(ctx, "ocm.flushwait", trace.Int("keys", int64(len(keys))))
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	want := make(map[*entry]bool)
	for _, k := range keys {
		if ent, ok := c.index[k]; ok && ent.state == stateUploading {
			want[ent] = true
		} else if ok && ent.state == stateFailed {
			return fmt.Errorf("flush for commit: key %s: %w: %v", k, ErrUploadFailed, ent.err)
		}
	}
	sp.AddInt("pending", int64(len(want)))
	// Promote the wanted jobs to the front of the queue, preserving their
	// relative order.
	var promoted []*list.Element
	for el := c.queue.Front(); el != nil; el = el.Next() {
		if want[el.Value.(uploadJob).ent] {
			promoted = append(promoted, el)
		}
	}
	for i := len(promoted) - 1; i >= 0; i-- {
		c.queue.MoveToFront(promoted[i])
	}
	c.cond.Broadcast()

	for ent := range want {
		for ent.state == stateUploading {
			if err := ctx.Err(); err != nil {
				return err
			}
			c.cond.Wait()
		}
		if ent.state == stateFailed {
			return fmt.Errorf("flush for commit: key %s: %w: %v", ent.key, ErrUploadFailed, ent.err)
		}
	}
	return nil
}

// Quiesce blocks until all asynchronous cache fills have settled and the
// upload queue is empty. Benchmarks use it to measure warm-cache behaviour
// deterministically.
func (c *Cache) Quiesce() {
	c.fillWG.Wait()
	c.mu.Lock()
	for c.queue.Len() > 0 && !c.closed {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// Delete invalidates the cached copy and deletes the object from the store.
// Used by garbage collection. The store delete rides the retrying upload
// pipeline: GC against a throttled store must recover within the same §4
// budget as writes, not fail permanently on the first hiccup.
func (c *Cache) Delete(ctx context.Context, key string) error {
	c.mu.Lock()
	if ent, ok := c.index[key]; ok {
		// Wait for any pending upload to settle so block reuse is safe.
		for ent.state == stateUploading || ent.pins > 0 {
			c.cond.Wait()
		}
		c.removeLocked(ent)
	}
	c.mu.Unlock()
	return c.upload.Delete(ctx, pageio.Ref{Key: key})
}
