package ocm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"cloudiq/internal/objstore"
)

// TestUploadQueueStress drives the write-back upload queue from many
// goroutines at once — PutBack/PutThrough writers, read-through readers,
// per-batch FlushForCommit, and deletes of committed pages — on a device
// small enough to force evictions and direct-write fallbacks while the queue
// drains. Under -race (the CI race job runs it) this exercises the cache's
// locking choreography; the final pass then verifies every surviving page
// end to end, so the test also proves no write was lost in the scramble.
func TestUploadQueueStress(t *testing.T) {
	const (
		writers   = 8
		perWriter = 40
		readers   = 4
	)
	key := func(w, j int) string { return fmt.Sprintf("w%d/%05d", w, j) }

	store := objstore.NewMem(objstore.Config{})
	// 64 blocks for ~300 live pages: allocation fails over to direct writes
	// and evictions run concurrently with uploads.
	c := newCache(t, 64*64, store)

	var wg sync.WaitGroup
	var verified atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []string
			flush := func() {
				if err := c.FlushForCommit(ctxb(), batch); err != nil {
					t.Errorf("writer %d: flush %v: %v", w, batch, err)
				}
				batch = batch[:0]
			}
			for j := 0; j < perWriter; j++ {
				k := key(w, j)
				var err error
				if j%4 == 0 {
					err = c.PutThrough(ctxb(), k, []byte(k))
				} else {
					err = c.PutBack(ctxb(), k, []byte(k))
				}
				if err != nil {
					t.Errorf("writer %d: put %s: %v", w, k, err)
					return
				}
				batch = append(batch, k)
				if len(batch) == 10 {
					flush()
				}
			}
			flush()
			// Retire a few of this writer's own committed pages, racing the
			// readers and any still-settling uploads.
			for j := 0; j < perWriter; j += 8 {
				if err := c.Delete(ctxb(), key(w, j)); err != nil {
					t.Errorf("writer %d: delete %s: %v", w, key(w, j), err)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 2*writers*perWriter; i++ {
				k := key(i%writers, (i/writers)%perWriter)
				data, err := c.Get(ctxb(), k)
				if err != nil {
					continue // not yet written, or deleted concurrently
				}
				if string(data) != k {
					t.Errorf("reader %d: Get(%s) = %q", r, k, data)
					return
				}
				verified.Add(1)
				_ = c.Stats()
				_ = c.Len()
			}
		}(r)
	}
	wg.Wait()
	c.Quiesce()
	t.Logf("concurrent verified reads: %d, stats: %+v", verified.Load(), c.Stats())

	// Every page that was not deleted must survive with its contents intact.
	for w := 0; w < writers; w++ {
		for j := 0; j < perWriter; j++ {
			if j%8 == 0 {
				continue // deleted above
			}
			k := key(w, j)
			data, err := c.Get(ctxb(), k)
			if err != nil || string(data) != k {
				t.Fatalf("after quiesce: Get(%s) = %q, %v", k, data, err)
			}
		}
	}
}
