package pageio

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cloudiq/internal/objstore"
)

// ErrSelectUnsupported reports that a pipeline (or its terminal) has no
// store-side compute capability: callers fall back to plain page reads.
// Deliberately NOT retryable — an incapable pipeline stays incapable.
var ErrSelectUnsupported = errors.New("pageio: select not supported by this pipeline")

// Selectable is the optional pushdown capability of a Handler. Stages that
// can forward a select implement it: the store adapter (when its store is an
// objstore.Selector) and the pass-through middlewares Trace, Meter, Retry,
// Coalesce and Faults (a select is not a page read, so the latter two have
// nothing to merge or govern and just forward). Cache terminals do not — a
// select must bypass page-granularity caching entirely, so select pipelines
// are built without them (see core.NewCloud).
type Selectable interface {
	Select(ctx context.Context, req objstore.SelectRequest) (*objstore.SelectResult, error)
}

// Select forwards req through h if the pipeline supports pushdown, and
// returns ErrSelectUnsupported otherwise.
func Select(h Handler, ctx context.Context, req objstore.SelectRequest) (*objstore.SelectResult, error) {
	if s, ok := h.(Selectable); ok {
		return s.Select(ctx, req)
	}
	return nil, ErrSelectUnsupported
}

// Select on the store adapter forwards to the store's compute endpoint.
func (h *storeHandler) Select(ctx context.Context, req objstore.SelectRequest) (*objstore.SelectResult, error) {
	sel, ok := h.store.(objstore.Selector)
	if !ok {
		return nil, ErrSelectUnsupported
	}
	return sel.Select(ctx, req)
}

// Select on the retry middleware applies the read policy: not-yet-visible
// column objects (eventual consistency) are retried with the same capped
// backoff as plain reads, while plan rejections and injected select faults
// surface immediately so the caller can fall back.
func (r *retry) Select(ctx context.Context, req objstore.SelectRequest) (*objstore.SelectResult, error) {
	delay := r.p.Delay
	var err error
	var slept time.Duration
	attempts := 0
	for attempt := 0; attempt < r.p.ReadAttempts; attempt++ {
		if attempt > 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			slept += delay
			delay = r.backoff(delay)
		}
		attempts++
		var res *objstore.SelectResult
		res, err = Select(r.next, ctx, req)
		if err == nil {
			noteRetries(ctx, attempts, slept)
			return res, nil
		}
		if ctxAborted(err) || errors.Is(err, ErrSelectUnsupported) || !r.p.retryRead(err) {
			return nil, err
		}
	}
	noteRetries(ctx, attempts, slept)
	if r.p.ReadAttempts == 1 {
		return nil, err
	}
	return nil, fmt.Errorf("%w: select %d cols after %d attempts: %w",
		ErrExhausted, len(req.Cols), r.p.ReadAttempts, err)
}

// Select on the meter records the operation in the layer's select class:
// items counts the column objects examined, bytes the result bytes that
// actually crossed the stage.
func (m *meter) Select(ctx context.Context, req objstore.SelectRequest) (*objstore.SelectResult, error) {
	start := m.now()
	res, err := Select(m.next, ctx, req)
	var nbytes int
	if res != nil {
		nbytes = int(res.ReturnedBytes)
	}
	m.stats.sel.record(m.now().Sub(start), len(req.Cols), errCount(err), nbytes)
	return res, err
}

// Select on the tracer opens a pageio.select span carrying the scanned /
// returned byte asymmetry pushdown exists to create.
func (h *spanner) Select(ctx context.Context, req objstore.SelectRequest) (*objstore.SelectResult, error) {
	ctx, sp := h.start(ctx, "pageio.select")
	sp.AddInt("items", int64(len(req.Cols)))
	res, err := Select(h.next, ctx, req)
	if sp != nil && res != nil {
		sp.AddInt("scanned", res.ScannedBytes)
		sp.AddInt("bytes", res.ReturnedBytes)
	}
	finish(sp, err)
	return res, err
}
