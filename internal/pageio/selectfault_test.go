package pageio

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"cloudiq/internal/column"
	"cloudiq/internal/faultinject"
	"cloudiq/internal/objstore"
)

// seedColumn stores one encoded int64 column object and returns its values.
func seedColumn(t *testing.T, s objstore.Store, key string, vals ...int64) {
	t.Helper()
	v := column.NewVector(column.Int64)
	for _, x := range vals {
		v.AppendInt(x)
	}
	put(t, s, key, column.EncodeSegment(v))
}

// TestSelectThroughCoalesceAndFaults pins the capability-loss regression on
// the pushdown path: Coalesce and Faults are pass-through stages for a
// select, so a pipeline containing them must still reach the terminal
// store's compute endpoint instead of reporting ErrSelectUnsupported (which
// callers treat as a permanent fallback to plain reads).
func TestSelectThroughCoalesceAndFaults(t *testing.T) {
	ctx := context.Background()
	store := objstore.NewMem(objstore.Config{})
	seedColumn(t, store, "col/a", 1, 2, 3)

	h := Chain(NewStore(store, nil),
		Coalesce(0),
		Faults(faultinject.New(1)),
		Retry(Policy{ReadAttempts: 3}),
	)
	res, err := Select(h, ctx, objstore.SelectRequest{
		Cols: []objstore.SelectCol{{Name: "a", Key: "col/a"}},
		Plan: objstore.SelectPlan{Project: []string{"a"}},
	})
	if err != nil {
		t.Fatalf("select through Coalesce+Faults+Retry: %v", err)
	}
	if res.Rows != 3 {
		t.Fatalf("rows = %d, want 3", res.Rows)
	}
}

// TestSelectFaultNotRetried: an injected obj.select failure is a signal to
// fall back to plain reads, not an eventual-consistency miss — the retry
// stage must surface it after exactly one attempt instead of burning the
// read budget in backoff.
func TestSelectFaultNotRetried(t *testing.T) {
	ctx := context.Background()
	plan := faultinject.New(7).Always(faultinject.ObjSelect)
	store := objstore.NewMem(objstore.Config{Faults: plan})
	seedColumn(t, store, "col/a", 1, 2, 3)

	h := Chain(NewStore(store, nil), Coalesce(0), Retry(Policy{ReadAttempts: 5}))
	_, err := Select(h, ctx, objstore.SelectRequest{
		Cols: []objstore.SelectCol{{Name: "a", Key: "col/a"}},
		Plan: objstore.SelectPlan{Project: []string{"a"}},
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if got := plan.Calls(faultinject.ObjSelect); got != 1 {
		t.Errorf("obj.select attempts = %d, want 1 (no retry on injected select fault)", got)
	}
}

// TestBatchFaultEquivalenceWithSelect is the satellite property test: random
// batches through the full Coalesce + Retry stack, with a random subset of
// keys failing persistently and an injected obj.select fault landing
// mid-scan, must stay outcome-equivalent to issuing every read individually
// — per-item errors via BatchError, healthy neighbours unharmed, and the
// failed select never contaminating the read path it falls back to.
func TestBatchFaultEquivalenceWithSelect(t *testing.T) {
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(31))

	for trial := 0; trial < 60; trial++ {
		plan := faultinject.New(uint64(trial)).Always(faultinject.ObjSelect)
		store := objstore.NewMem(objstore.Config{Faults: plan})

		n := 2 + rnd.Intn(7)
		keys := make([]string, n)
		bad := make([]bool, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("col/k%d", i)
			seedColumn(t, store, keys[i], int64(i), int64(i*10))
			if rnd.Intn(3) == 0 {
				bad[i] = true
				plan.Always(faultinject.ObjGet.With(keys[i]))
			}
		}

		h := Chain(NewStore(store, nil), Coalesce(0), Retry(Policy{ReadAttempts: 2}))

		// The pushdown attempt fails mid-scan (obj.select is Always-armed);
		// the scan falls back to the batched read below, exactly the fallback
		// sequence the exec layer performs.
		if _, err := Select(h, ctx, objstore.SelectRequest{
			Cols: []objstore.SelectCol{{Name: "a", Key: keys[0]}},
			Plan: objstore.SelectPlan{Project: []string{"a"}},
		}); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("trial %d: select err = %v, want injected", trial, err)
		}

		refs := make([]Ref, n)
		for i, k := range keys {
			refs[i] = Ref{Key: k}
		}
		out, err := h.ReadBatch(ctx, refs)
		errs := ItemErrors(err, n)

		for i := range refs {
			one, oneErr := h.ReadPage(ctx, refs[i])
			if (errs[i] == nil) != (oneErr == nil) {
				t.Fatalf("trial %d key %s: batch err %v vs individual %v", trial, keys[i], errs[i], oneErr)
			}
			if bad[i] {
				if !errors.Is(errs[i], faultinject.ErrInjected) {
					t.Fatalf("trial %d key %s: err = %v, want injected", trial, keys[i], errs[i])
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("trial %d key %s: healthy item failed: %v", trial, keys[i], errs[i])
			}
			if string(out[i]) != string(one) {
				t.Fatalf("trial %d key %s: batch data diverges from individual read", trial, keys[i])
			}
		}
	}
}
