package pageio

import (
	"context"

	"cloudiq/internal/faultinject"
	"cloudiq/internal/objstore"
)

// Faults returns a middleware that consults a fault plan once per request —
// the PipeRead/PipeWrite/PipeDelete sites — instead of threading injection
// hooks through every call site. Detail is the ref's key (or decimal device
// offset), so plans can target one page. Batch operations are checked per
// item: governed items fail, the rest are forwarded as a sub-batch. A nil
// plan is a no-op stage.
func Faults(plan *faultinject.Plan) Middleware {
	return func(next Handler) Handler {
		if plan == nil {
			return next
		}
		return &faultsMW{next: next, plan: plan}
	}
}

type faultsMW struct {
	next Handler
	plan *faultinject.Plan
}

func (f *faultsMW) check(site faultinject.Site, ref Ref) error {
	return f.plan.Check(site, ref.Detail())
}

func (f *faultsMW) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	if err := f.check(faultinject.PipeRead, ref); err != nil {
		return nil, err
	}
	return f.next.ReadPage(ctx, ref)
}

func (f *faultsMW) WritePage(ctx context.Context, req WriteReq) error {
	if err := f.check(faultinject.PipeWrite, req.Ref); err != nil {
		return err
	}
	return f.next.WritePage(ctx, req)
}

func (f *faultsMW) Delete(ctx context.Context, ref Ref) error {
	if err := f.check(faultinject.PipeDelete, ref); err != nil {
		return err
	}
	return f.next.Delete(ctx, ref)
}

// Select forwards the pushdown capability: select injection lives at the
// store's own obj.select site (the same plan governs it), so this stage adds
// no second draw — but it must not hide the capability of the layers below.
func (f *faultsMW) Select(ctx context.Context, req objstore.SelectRequest) (*objstore.SelectResult, error) {
	return Select(f.next, ctx, req)
}

func (f *faultsMW) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	out := make([][]byte, len(refs))
	errs := make([]error, len(refs))
	var fwd []Ref
	var idx []int
	for i, ref := range refs {
		if err := f.check(faultinject.PipeRead, ref); err != nil {
			errs[i] = err
			continue
		}
		fwd = append(fwd, ref)
		idx = append(idx, i)
	}
	if len(fwd) > 0 {
		res, err := f.next.ReadBatch(ctx, fwd)
		sub := ItemErrors(err, len(fwd))
		for j, i := range idx {
			if res != nil {
				out[i] = res[j]
			}
			errs[i] = sub[j]
		}
	}
	return out, batchErr(errs)
}

func (f *faultsMW) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	errs := make([]error, len(reqs))
	var fwd []WriteReq
	var idx []int
	for i, req := range reqs {
		if err := f.check(faultinject.PipeWrite, req.Ref); err != nil {
			errs[i] = err
			continue
		}
		fwd = append(fwd, req)
		idx = append(idx, i)
	}
	if len(fwd) > 0 {
		sub := ItemErrors(f.next.WriteBatch(ctx, fwd), len(fwd))
		for j, i := range idx {
			errs[i] = sub[j]
		}
	}
	return batchErr(errs)
}
