package pageio

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/faultinject"
	"cloudiq/internal/objstore"
)

func memStore() objstore.Store {
	return objstore.NewMem(objstore.Config{})
}

func put(t *testing.T, s objstore.Store, key string, data []byte) {
	t.Helper()
	if err := s.Put(context.Background(), key, data); err != nil {
		t.Fatalf("seed put %s: %v", key, err)
	}
}

// retryAll retries every error, isolating middleware-order properties from
// the default not-found-only read policy.
func retryAll(err error) bool { return true }

// TestChainOrder pins the composition contract: the first middleware listed
// is the outermost stage.
func TestChainOrder(t *testing.T) {
	var order []string
	tag := func(name string) Middleware {
		return func(next Handler) Handler {
			return &tagged{next: next, name: name, order: &order}
		}
	}
	h := Chain(NewStore(memStore(), nil), tag("outer"), tag("inner"))
	_ = h.WritePage(context.Background(), WriteReq{Ref: Ref{Key: "k"}, Data: []byte("x")})
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("stage order = %v, want [outer inner]", order)
	}
}

type tagged struct {
	next  Handler
	name  string
	order *[]string
}

func (h *tagged) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	*h.order = append(*h.order, h.name)
	return h.next.ReadPage(ctx, ref)
}
func (h *tagged) WritePage(ctx context.Context, req WriteReq) error {
	*h.order = append(*h.order, h.name)
	return h.next.WritePage(ctx, req)
}
func (h *tagged) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	*h.order = append(*h.order, h.name)
	return h.next.ReadBatch(ctx, refs)
}
func (h *tagged) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	*h.order = append(*h.order, h.name)
	return h.next.WriteBatch(ctx, reqs)
}
func (h *tagged) Delete(ctx context.Context, ref Ref) error {
	*h.order = append(*h.order, h.name)
	return h.next.Delete(ctx, ref)
}

// TestRetryOutsideFaultsSeesInjectedErrors is the middleware-order property
// the pipeline depends on: with Retry stacked OUTSIDE Faults, injected
// failures are retried and eventually succeed; with the order flipped, the
// fault short-circuits above the retry loop and the caller sees it.
func TestRetryOutsideFaultsSeesInjectedErrors(t *testing.T) {
	ctx := context.Background()
	store := memStore()
	put(t, store, "page", []byte("payload"))

	plan := faultinject.New(1).FailNext(faultinject.PipeRead, 2)
	h := Chain(NewStore(store, nil),
		Retry(Policy{ReadAttempts: 5, RetryRead: retryAll}),
		Faults(plan),
	)
	data, err := h.ReadPage(ctx, Ref{Key: "page"})
	if err != nil {
		t.Fatalf("retry-outside-faults read: %v", err)
	}
	if string(data) != "payload" {
		t.Fatalf("read data = %q", data)
	}
	if got := plan.Injected(); got != 2 {
		t.Errorf("injected faults = %d, want 2 (both retried through)", got)
	}
	if got := plan.Calls(faultinject.PipeRead); got != 3 {
		t.Errorf("pipe.read calls = %d, want 3 (2 failures + success)", got)
	}

	// Flipped order: Faults outermost decides once; Retry below it never
	// sees the injected error.
	plan2 := faultinject.New(1).FailNext(faultinject.PipeRead, 1)
	flipped := Chain(NewStore(store, nil),
		Faults(plan2),
		Retry(Policy{ReadAttempts: 5, RetryRead: retryAll}),
	)
	if _, err := flipped.ReadPage(ctx, Ref{Key: "page"}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("faults-outside-retry read err = %v, want injected", err)
	}
	if got := plan2.Calls(faultinject.PipeRead); got != 1 {
		t.Errorf("flipped pipe.read calls = %d, want 1 (no retry reaches the site)", got)
	}
}

// TestMeterCountsRetriedAttempts checks the second order property: a Meter
// INSIDE Retry records every attempt individually, while a Meter outside
// records one caller-visible call.
func TestMeterCountsRetriedAttempts(t *testing.T) {
	ctx := context.Background()
	store := memStore()
	put(t, store, "page", []byte("payload"))

	reg := NewRegistry()
	plan := faultinject.New(7).FailNext(faultinject.PipeRead, 2)
	h := Chain(NewStore(store, nil),
		Meter(reg, "outer"),
		Retry(Policy{ReadAttempts: 5, RetryRead: retryAll}),
		Meter(reg, "inner"),
		Faults(plan),
	)
	if _, err := h.ReadPage(ctx, Ref{Key: "page"}); err != nil {
		t.Fatalf("read: %v", err)
	}
	snap := reg.Snapshot()
	inner, outer := snap["inner"].Read, snap["outer"].Read
	if inner.Calls != 3 || inner.Errors != 2 {
		t.Errorf("inner meter = %d calls / %d errors, want 3 / 2", inner.Calls, inner.Errors)
	}
	if outer.Calls != 1 || outer.Errors != 0 {
		t.Errorf("outer meter = %d calls / %d errors, want 1 / 0", outer.Calls, outer.Errors)
	}
	if inner.Bytes != uint64(len("payload")) {
		t.Errorf("inner bytes = %d, want %d (failed attempts move no data)", inner.Bytes, len("payload"))
	}
}

// TestRetryExhausted checks the ErrExhausted wrap and that the last
// underlying error stays visible.
func TestRetryExhausted(t *testing.T) {
	plan := faultinject.New(3).Always(faultinject.PipeWrite)
	h := Chain(NewStore(memStore(), nil),
		Retry(Policy{WriteAttempts: 3}),
		Faults(plan),
	)
	err := h.WritePage(context.Background(), WriteReq{Ref: Ref{Key: "k"}, Data: []byte("x")})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, should still wrap the underlying injected error", err)
	}
	if got := plan.Injected(); got != 3 {
		t.Errorf("injected = %d, want 3 write attempts", got)
	}
}

// TestRetryDefaultReadPolicy: only not-found reads retry by default.
func TestRetryDefaultReadPolicy(t *testing.T) {
	store := memStore()
	put(t, store, "page", []byte("x"))
	h := Chain(NewStore(store, nil), Retry(Policy{ReadAttempts: 4}))

	// Missing key: retried to exhaustion.
	_, err := h.ReadPage(context.Background(), Ref{Key: "absent"})
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("missing-key err = %v, want exhausted not-found", err)
	}

	// Injected (non-not-found) read error: surfaced immediately.
	plan := faultinject.New(5).Always(faultinject.PipeRead)
	h2 := Chain(NewStore(store, nil), Retry(Policy{ReadAttempts: 4}), Faults(plan))
	if _, err := h2.ReadPage(context.Background(), Ref{Key: "page"}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if got := plan.Calls(faultinject.PipeRead); got != 1 {
		t.Errorf("pipe.read calls = %d, want 1 (no retry on non-retryable error)", got)
	}
}

// TestPoolCancellation: once the context is cancelled, no further tasks
// start and the unrun tail reports ctx.Err().
func TestPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	errs := NewPool(1).Do(ctx, 8, func(i int) error {
		ran.Add(1)
		if i == 2 {
			cancel()
		}
		return nil
	})
	if got := ran.Load(); got != 3 {
		t.Fatalf("tasks run = %d, want 3 (size-1 pool runs in index order)", got)
	}
	for i, err := range errs {
		if i <= 2 && err != nil {
			t.Errorf("errs[%d] = %v, want nil", i, err)
		}
		if i > 2 && !errors.Is(err, context.Canceled) {
			t.Errorf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
}

// TestPoolCollectsAllErrors: every distinct task failure survives into the
// positional slice; joining shows them all, not just the race winner.
func TestPoolCollectsAllErrors(t *testing.T) {
	errs := NewPool(4).Do(context.Background(), 6, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	joined := errors.Join(errs...)
	for _, want := range []string{"task 1 failed", "task 3 failed", "task 5 failed"} {
		if joined == nil || !strings.Contains(joined.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, joined)
		}
	}
}

// TestBatchErrorSemantics pins ItemErrors' three expansion modes and the
// errors.Is visibility through BatchError.
func TestBatchErrorSemantics(t *testing.T) {
	if errs := ItemErrors(nil, 3); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatal("nil error must expand to all-nil")
	}
	e1 := errors.New("one")
	be := &BatchError{Errs: []error{nil, e1, nil}}
	errs := ItemErrors(be, 3)
	if errs[0] != nil || !errors.Is(errs[1], e1) || errs[2] != nil {
		t.Fatalf("positional expansion wrong: %v", errs)
	}
	if !errors.Is(be, e1) {
		t.Fatal("errors.Is must see through BatchError")
	}
	whole := errors.New("whole batch down")
	for i, err := range ItemErrors(whole, 2) {
		if !errors.Is(err, whole) {
			t.Errorf("replicated err[%d] = %v", i, err)
		}
	}
}

// TestStoreBatch round-trips a batch through the store adapter with a
// parallel pool and checks positional alignment including failures.
func TestStoreBatch(t *testing.T) {
	ctx := context.Background()
	store := memStore()
	h := NewStore(store, NewPool(4))

	reqs := make([]WriteReq, 8)
	for i := range reqs {
		reqs[i] = WriteReq{Ref: Ref{Key: fmt.Sprintf("k%d", i)}, Data: []byte{byte(i)}}
	}
	if err := h.WriteBatch(ctx, reqs); err != nil {
		t.Fatalf("write batch: %v", err)
	}

	refs := []Ref{{Key: "k3"}, {Key: "missing"}, {Key: "k5"}}
	out, err := h.ReadBatch(ctx, refs)
	if err == nil {
		t.Fatal("read batch with a missing key must fail")
	}
	errs := ItemErrors(err, len(refs))
	if errs[0] != nil || errs[2] != nil || !errors.Is(errs[1], objstore.ErrNotFound) {
		t.Fatalf("item errors = %v", errs)
	}
	if out[0][0] != 3 || out[2][0] != 5 || out[1] != nil {
		t.Fatalf("batch results misaligned: %v", out)
	}
}

// TestCoalesceMergesAdjacentExtents: four adjacent pages become one device
// write and one device read; a gap splits the run.
func TestCoalesceMergesAdjacentExtents(t *testing.T) {
	ctx := context.Background()
	dev := blockdev.NewMem(blockdev.Config{Capacity: 1 << 16})
	h := Chain(NewDevice(dev, nil), Coalesce(0))

	const page = 64
	var reqs []WriteReq
	for i := 0; i < 4; i++ {
		data := make([]byte, page)
		for j := range data {
			data[j] = byte(i + 1)
		}
		reqs = append(reqs, WriteReq{Ref: Ref{Off: int64(i * page)}, Data: data})
	}
	if err := h.WriteBatch(ctx, reqs); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	if got := dev.Stats().Writes(); got != 1 {
		t.Errorf("device writes = %d, want 1 (group write)", got)
	}

	var refs []Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, Ref{Off: int64(i * page), Len: page})
	}
	out, err := h.ReadBatch(ctx, refs)
	if err != nil {
		t.Fatalf("read batch: %v", err)
	}
	if got := dev.Stats().Reads(); got != 1 {
		t.Errorf("device reads = %d, want 1 (scatter-gather)", got)
	}
	for i, data := range out {
		if len(data) != page || data[0] != byte(i+1) || data[page-1] != byte(i+1) {
			t.Errorf("page %d content wrong: len=%d first=%d", i, len(data), data[0])
		}
	}

	// A hole splits the run: pages at 0 and 2*page are not adjacent.
	dev.Stats().Reset()
	if _, err := h.ReadBatch(ctx, []Ref{{Off: 0, Len: page}, {Off: 2 * page, Len: page}}); err != nil {
		t.Fatalf("gapped read batch: %v", err)
	}
	if got := dev.Stats().Reads(); got != 2 {
		t.Errorf("gapped device reads = %d, want 2", got)
	}
}

// TestCoalesceOutOfOrderBatch: refs arrive unsorted but still merge, and
// results stay positionally aligned with the request order.
func TestCoalesceOutOfOrderBatch(t *testing.T) {
	ctx := context.Background()
	dev := blockdev.NewMem(blockdev.Config{Capacity: 1 << 16})
	h := Chain(NewDevice(dev, nil), Coalesce(0))

	const page = 32
	reqs := []WriteReq{
		{Ref: Ref{Off: 2 * page}, Data: fill(page, 3)},
		{Ref: Ref{Off: 0}, Data: fill(page, 1)},
		{Ref: Ref{Off: 1 * page}, Data: fill(page, 2)},
	}
	if err := h.WriteBatch(ctx, reqs); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	if got := dev.Stats().Writes(); got != 1 {
		t.Errorf("device writes = %d, want 1", got)
	}
	out, err := h.ReadBatch(ctx, []Ref{
		{Off: 1 * page, Len: page},
		{Off: 0, Len: page},
	})
	if err != nil {
		t.Fatalf("read batch: %v", err)
	}
	if out[0][0] != 2 || out[1][0] != 1 {
		t.Fatalf("results misaligned: [%d %d], want [2 1]", out[0][0], out[1][0])
	}
}

func fill(n int, v byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = v
	}
	return b
}
