package pageio

import (
	"context"
	"sync"
	"sync/atomic"
)

// WorkPool bounds the fan-out of batch operations. It holds no long-lived
// goroutines: each Do call spawns at most Size workers that claim task
// indices from a shared counter, so a size-1 pool executes tasks strictly in
// index order (the property deterministic crash simulations rely on).
//
// A nil *WorkPool is valid and behaves as a pool of size 1.
type WorkPool struct {
	size int
}

// NewPool returns a pool running at most n concurrent tasks per Do call.
func NewPool(n int) *WorkPool {
	if n < 1 {
		n = 1
	}
	return &WorkPool{size: n}
}

// Size reports the concurrency bound (1 for a nil pool).
func (p *WorkPool) Size() int {
	if p == nil || p.size < 1 {
		return 1
	}
	return p.size
}

// Do runs fn(0) .. fn(n-1) on up to Size workers and returns the positional
// error slice. Workers check ctx before claiming each task; once the context
// is cancelled no further tasks start and every task that never ran reports
// ctx.Err(). Tasks that did run keep their own result, so a caller joining
// the slice sees every distinct failure, not just the race winner.
func (p *WorkPool) Do(ctx context.Context, n int, fn func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	workers := p.Size()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	run := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//lint:ignore detclosure workers join via wg.Wait before Do returns, and each claimed index writes its own errs slot, so the result is independent of interleaving
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		claimed := int(next.Load())
		if claimed > n {
			claimed = n
		}
		for i := claimed; i < n; i++ {
			errs[i] = err
		}
	}
	return errs
}
