package pageio

import (
	"context"

	"cloudiq/internal/trace"
)

// Trace returns a middleware that opens one child span per operation under
// the context's current span, labelled with the pipeline stage name (the
// same names Meter uses: "dbspace:user", "ocm:user", "dev:user", ...).
// Stacked outermost it times the caller-visible operation; inner middlewares
// (Retry, Coalesce) annotate the same span with their decisions. When the
// context carries no span — tracing off — the cost is one context lookup.
func Trace(layer string) Middleware {
	return func(next Handler) Handler {
		return &spanner{next: next, layer: layer}
	}
}

type spanner struct {
	next  Handler
	layer string
}

func (h *spanner) start(ctx context.Context, op string) (context.Context, *trace.Span) {
	parent := trace.From(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Child(op, trace.String("layer", h.layer))
	return trace.With(ctx, sp), sp
}

// finish closes sp, recording the error if any. Nil-safe.
func finish(sp *trace.Span, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		sp.SetAttr("err", err.Error())
	}
	sp.End()
}

func (h *spanner) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	ctx, sp := h.start(ctx, "pageio.read")
	if sp != nil {
		sp.SetAttr("ref", ref.Detail())
	}
	data, err := h.next.ReadPage(ctx, ref)
	sp.AddInt("bytes", int64(len(data)))
	finish(sp, err)
	return data, err
}

func (h *spanner) WritePage(ctx context.Context, req WriteReq) error {
	ctx, sp := h.start(ctx, "pageio.write")
	if sp != nil {
		sp.SetAttr("ref", req.Ref.Detail())
		sp.AddInt("bytes", int64(len(req.Data)))
		if req.Async {
			sp.SetAttr("async", "true")
		}
	}
	err := h.next.WritePage(ctx, req)
	finish(sp, err)
	return err
}

func (h *spanner) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	ctx, sp := h.start(ctx, "pageio.readbatch")
	sp.AddInt("items", int64(len(refs)))
	out, err := h.next.ReadBatch(ctx, refs)
	if sp != nil {
		var n int64
		for _, b := range out {
			n += int64(len(b))
		}
		sp.AddInt("bytes", n)
	}
	finish(sp, err)
	return out, err
}

func (h *spanner) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	ctx, sp := h.start(ctx, "pageio.writebatch")
	if sp != nil {
		var n int64
		for _, r := range reqs {
			n += int64(len(r.Data))
		}
		sp.AddInt("items", int64(len(reqs)))
		sp.AddInt("bytes", n)
	}
	err := h.next.WriteBatch(ctx, reqs)
	finish(sp, err)
	return err
}

func (h *spanner) Delete(ctx context.Context, ref Ref) error {
	ctx, sp := h.start(ctx, "pageio.delete")
	if sp != nil {
		sp.SetAttr("ref", ref.Detail())
	}
	err := h.next.Delete(ctx, ref)
	finish(sp, err)
	return err
}
