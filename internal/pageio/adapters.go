package pageio

import (
	"context"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/objstore"
)

// NewStore adapts an object store to the Handler interface. Batch operations
// fan out through pool (nil pool = sequential). The adapter adds no retry or
// metering of its own; stack Retry and Meter around it.
func NewStore(s objstore.Store, pool *WorkPool) Handler {
	return &storeHandler{store: s, pool: pool}
}

type storeHandler struct {
	store objstore.Store
	pool  *WorkPool
}

func (h *storeHandler) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	return h.store.Get(ctx, ref.Key)
}

func (h *storeHandler) WritePage(ctx context.Context, req WriteReq) error {
	return h.store.Put(ctx, req.Ref.Key, req.Data)
}

func (h *storeHandler) Delete(ctx context.Context, ref Ref) error {
	return h.store.Delete(ctx, ref.Key)
}

func (h *storeHandler) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	out := make([][]byte, len(refs))
	errs := h.pool.Do(ctx, len(refs), func(i int) error {
		data, err := h.store.Get(ctx, refs[i].Key)
		if err != nil {
			return err
		}
		out[i] = data
		return nil
	})
	return out, batchErr(errs)
}

func (h *storeHandler) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	errs := h.pool.Do(ctx, len(reqs), func(i int) error {
		return h.store.Put(ctx, reqs[i].Ref.Key, reqs[i].Data)
	})
	return batchErr(errs)
}

// NewDevice adapts a block device to the Handler interface. Refs carry byte
// offsets; ReadPage allocates a fresh Ref.Len-sized buffer per page. Batch
// operations fan out through pool (nil pool = sequential), overlapping
// per-op device latency the way the engine's old parallel flush workers
// did. Delete is a no-op: block reclamation is the free-list's job, not the
// device's.
func NewDevice(d blockdev.Device, pool *WorkPool) Handler {
	return &deviceHandler{dev: d, pool: pool}
}

type deviceHandler struct {
	dev  blockdev.Device
	pool *WorkPool
}

func (h *deviceHandler) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	buf := make([]byte, ref.Len)
	if err := h.dev.ReadAt(ctx, buf, ref.Off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (h *deviceHandler) WritePage(ctx context.Context, req WriteReq) error {
	return h.dev.WriteAt(ctx, req.Data, req.Ref.Off)
}

func (h *deviceHandler) Delete(ctx context.Context, ref Ref) error {
	return nil
}

func (h *deviceHandler) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	out := make([][]byte, len(refs))
	errs := h.pool.Do(ctx, len(refs), func(i int) error {
		data, err := h.ReadPage(ctx, refs[i])
		if err != nil {
			return err
		}
		out[i] = data
		return nil
	})
	return out, batchErr(errs)
}

func (h *deviceHandler) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	errs := h.pool.Do(ctx, len(reqs), func(i int) error {
		return h.WritePage(ctx, reqs[i])
	})
	return batchErr(errs)
}
