package pageio

import "context"

// CacheLayer is the surface a caching store (the OCM) exposes to the
// pipeline: reads consult the cache and fall through to the backing store on
// miss, write-back stages locally and uploads asynchronously, write-through
// is durable on return.
type CacheLayer interface {
	Get(ctx context.Context, key string) ([]byte, error)
	PutBack(ctx context.Context, key string, data []byte) error
	PutThrough(ctx context.Context, key string, data []byte) error
	Delete(ctx context.Context, key string) error
}

// NewCache adapts a CacheLayer into a pipeline terminal. A WriteReq with
// Async set routes to PutBack (the OCM's write-back queue); synchronous
// writes route to PutThrough. Batch operations run item-by-item: the
// parallelism for cloud batches lives in the Retry stage above, and PutBack
// is an in-memory staging step that needs none.
func NewCache(c CacheLayer) Handler {
	return &cacheHandler{cache: c}
}

type cacheHandler struct {
	cache CacheLayer
}

func (h *cacheHandler) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	return h.cache.Get(ctx, ref.Key)
}

func (h *cacheHandler) WritePage(ctx context.Context, req WriteReq) error {
	if req.Async {
		return h.cache.PutBack(ctx, req.Ref.Key, req.Data)
	}
	return h.cache.PutThrough(ctx, req.Ref.Key, req.Data)
}

func (h *cacheHandler) Delete(ctx context.Context, ref Ref) error {
	return h.cache.Delete(ctx, ref.Key)
}

func (h *cacheHandler) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	out := make([][]byte, len(refs))
	errs := make([]error, len(refs))
	for i, ref := range refs {
		if err := ctx.Err(); err != nil {
			for ; i < len(refs); i++ {
				errs[i] = err
			}
			break
		}
		out[i], errs[i] = h.ReadPage(ctx, ref)
	}
	return out, batchErr(errs)
}

func (h *cacheHandler) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	errs := make([]error, len(reqs))
	for i, req := range reqs {
		if err := ctx.Err(); err != nil {
			for ; i < len(reqs); i++ {
				errs[i] = err
			}
			break
		}
		errs[i] = h.WritePage(ctx, req)
	}
	return batchErr(errs)
}
