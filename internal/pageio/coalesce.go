package pageio

import (
	"context"
	"sort"

	"cloudiq/internal/objstore"
	"cloudiq/internal/trace"
)

// DefaultCoalesceBytes bounds a merged request when Coalesce is built with
// maxBytes <= 0.
const DefaultCoalesceBytes = 1 << 20

// Coalesce returns a middleware that merges adjacent block-device extents
// inside a batch: a ReadBatch whose refs tile a contiguous byte range
// becomes one scatter-gather ReadPage, and a WriteBatch of adjacent pages
// becomes one group write. Merged requests never exceed maxBytes. Refs that
// are not block refs, not adjacent, or part of an overlapping batch pass
// through untouched. Single operations are forwarded as-is.
func Coalesce(maxBytes int) Middleware {
	if maxBytes <= 0 {
		maxBytes = DefaultCoalesceBytes
	}
	return func(next Handler) Handler {
		return &coalesce{next: next, max: maxBytes}
	}
}

type coalesce struct {
	next Handler
	max  int
}

func (c *coalesce) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	return c.next.ReadPage(ctx, ref)
}

func (c *coalesce) WritePage(ctx context.Context, req WriteReq) error {
	return c.next.WritePage(ctx, req)
}

func (c *coalesce) Delete(ctx context.Context, ref Ref) error {
	return c.next.Delete(ctx, ref)
}

// Select passes through untouched: a pushdown select is not a page read, so
// there is nothing to merge — but swallowing the capability here would turn
// every pushdown through a coalescing pipeline into a spurious fallback.
func (c *coalesce) Select(ctx context.Context, req objstore.SelectRequest) (*objstore.SelectResult, error) {
	return Select(c.next, ctx, req)
}

// span is one merged run: original batch indices in device order, covering
// [start, start+size).
type span struct {
	start int64
	size  int
	idx   []int
}

// plan sorts the block-ref indices by offset and merges adjacent extents.
// It returns nil if merging is unsafe (overlapping extents) or useless
// (nothing adjacent).
func (c *coalesce) plan(off func(int) int64, length func(int) int, block []int) []span {
	sort.Slice(block, func(a, b int) bool { return off(block[a]) < off(block[b]) })
	var spans []span
	merged := false
	for _, i := range block {
		n := len(spans)
		if n > 0 {
			s := &spans[n-1]
			end := s.start + int64(s.size)
			if off(i) < end {
				return nil // overlap: do not reorder, let the batch through
			}
			if off(i) == end && s.size+length(i) <= c.max {
				s.size += length(i)
				s.idx = append(s.idx, i)
				merged = true
				continue
			}
		}
		spans = append(spans, span{start: off(i), size: length(i), idx: []int{i}})
	}
	if !merged {
		return nil
	}
	return spans
}

func (c *coalesce) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	var block []int
	for i, ref := range refs {
		if ref.IsBlock() {
			block = append(block, i)
		}
	}
	spans := c.plan(
		func(i int) int64 { return refs[i].Off },
		func(i int) int { return refs[i].Len },
		block,
	)
	if spans == nil {
		return c.next.ReadBatch(ctx, refs)
	}
	out := make([][]byte, len(refs))
	errs := make([]error, len(refs))

	// Merged and singleton block runs go down as one sub-batch of
	// scatter-gather refs, so the terminal's pool overlaps their latency;
	// the non-block refs ride through as a second sub-batch.
	mrefs := make([]Ref, len(spans))
	for j, s := range spans {
		mrefs[j] = Ref{Off: s.start, Len: s.size}
	}
	res, err := c.next.ReadBatch(ctx, mrefs)
	spanErrs := ItemErrors(err, len(spans))
	// A failed merged span must not smear one extent's error across every
	// member ref: degrade to individual reads so each page reports its own
	// outcome, exactly as the uncoalesced path would. Singleton spans were
	// already individual reads, so their error stands.
	var fallback []int
	for j, s := range spans {
		if spanErrs[j] != nil && len(s.idx) > 1 {
			fallback = append(fallback, s.idx...)
			continue
		}
		pos := 0
		for _, i := range s.idx {
			if spanErrs[j] != nil {
				errs[i] = spanErrs[j]
			} else if res != nil && res[j] != nil {
				page := make([]byte, refs[i].Len)
				copy(page, res[j][pos:pos+refs[i].Len])
				out[i] = page
			}
			pos += refs[i].Len
		}
	}
	if len(fallback) > 0 {
		sub := make([]Ref, len(fallback))
		for j, i := range fallback {
			sub[j] = refs[i]
		}
		fres, ferr := c.next.ReadBatch(ctx, sub)
		fErrs := ItemErrors(ferr, len(fallback))
		for j, i := range fallback {
			if fres != nil {
				out[i] = fres[j]
			}
			errs[i] = fErrs[j]
		}
	}
	noteMerge(ctx, len(refs), len(spans), len(fallback))
	if rest := otherIndices(len(refs), block); len(rest) > 0 {
		sub := make([]Ref, len(rest))
		for j, i := range rest {
			sub[j] = refs[i]
		}
		res, err := c.next.ReadBatch(ctx, sub)
		subErrs := ItemErrors(err, len(rest))
		for j, i := range rest {
			if res != nil {
				out[i] = res[j]
			}
			errs[i] = subErrs[j]
		}
	}
	return out, batchErr(errs)
}

func (c *coalesce) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	var block []int
	for i, req := range reqs {
		if req.Ref.IsBlock() {
			block = append(block, i)
		}
	}
	spans := c.plan(
		func(i int) int64 { return reqs[i].Ref.Off },
		func(i int) int { return len(reqs[i].Data) },
		block,
	)
	if spans == nil {
		return c.next.WriteBatch(ctx, reqs)
	}
	errs := make([]error, len(reqs))
	mreqs := make([]WriteReq, len(spans))
	for j, s := range spans {
		if len(s.idx) == 1 {
			mreqs[j] = reqs[s.idx[0]]
			continue
		}
		buf := make([]byte, 0, s.size)
		for _, i := range s.idx {
			buf = append(buf, reqs[i].Data...)
		}
		mreqs[j] = WriteReq{Ref: Ref{Off: s.start}, Data: buf}
	}
	spanErrs := ItemErrors(c.next.WriteBatch(ctx, mreqs), len(spans))
	for j, s := range spans {
		for _, i := range s.idx {
			errs[i] = spanErrs[j]
		}
	}
	noteMerge(ctx, len(reqs), len(spans), 0)
	if rest := otherIndices(len(reqs), block); len(rest) > 0 {
		sub := make([]WriteReq, len(rest))
		for j, i := range rest {
			sub[j] = reqs[i]
		}
		subErrs := ItemErrors(c.next.WriteBatch(ctx, sub), len(rest))
		for j, i := range rest {
			errs[i] = subErrs[j]
		}
	}
	return batchErr(errs)
}

// noteMerge records a merge decision on the context's span: how many refs
// collapsed into how many device requests, and how many fell back to
// individual reads after a merged span failed.
func noteMerge(ctx context.Context, refs, spans, fallback int) {
	sp := trace.From(ctx)
	if sp == nil {
		return
	}
	sp.AddInt("coalesce.refs", int64(refs))
	sp.AddInt("coalesce.spans", int64(spans))
	if fallback > 0 {
		sp.AddInt("coalesce.fallback", int64(fallback))
	}
}

// otherIndices returns [0,n) minus the sorted-set semantics of block (which
// may be in any order).
func otherIndices(n int, block []int) []int {
	if len(block) == n {
		return nil
	}
	in := make(map[int]bool, len(block))
	for _, i := range block {
		in[i] = true
	}
	var rest []int
	for i := 0; i < n; i++ {
		if !in[i] {
			rest = append(rest, i)
		}
	}
	return rest
}
