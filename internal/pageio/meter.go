package pageio

import (
	"context"
	"encoding/json"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// StatsRegistry collects per-layer I/O statistics. Each Meter stage in a
// pipeline owns one named LayerStats, so the same logical request is visible
// once per layer it crosses ("dbspace:user" above the retry stage,
// "store:user" below it — the difference between the two read counts IS the
// retry amplification).
//
// Latencies feed histograms only; no control flow depends on them. By
// default they are sampled from the wall clock; deterministic harnesses
// inject their simulated clock with SetClock so a metered pipeline's
// observable state is a pure function of the seeds.
type StatsRegistry struct {
	mu     sync.Mutex
	layers map[string]*LayerStats
	clock  func() time.Time
}

// NewRegistry returns an empty registry sampling the wall clock.
func NewRegistry() *StatsRegistry {
	return &StatsRegistry{layers: make(map[string]*LayerStats)}
}

// SetClock injects the latency clock (simulated time in deterministic runs).
// Call it before building pipelines: meters capture the sampler at
// construction.
func (r *StatsRegistry) SetClock(fn func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = fn
}

// now samples the registry's clock, falling back to the wall clock when none
// was injected.
func (r *StatsRegistry) now() time.Time {
	r.mu.Lock()
	fn := r.clock
	r.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return time.Now()
}

// Layer returns the named layer's stats, creating them on first use.
func (r *StatsRegistry) Layer(name string) *LayerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := r.layers[name]
	if ls == nil {
		ls = &LayerStats{}
		r.layers[name] = ls
	}
	return ls
}

// Snapshot captures every layer's counters. The map is JSON-marshalable;
// encoding/json sorts the keys.
func (r *StatsRegistry) Snapshot() map[string]LayerSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]LayerSnapshot, len(r.layers))
	for name, ls := range r.layers {
		out[name] = ls.snapshot()
	}
	return out
}

// WriteJSON renders the registry as indented JSON:
//
//	{"<layer>": {"read"|"write"|"delete": {
//	    "calls": N, "items": N, "errors": N, "bytes": N,
//	    "lat_ns_pow2": [c0, c1, ...]}}}
//
// lat_ns_pow2[i] counts calls whose latency was in [2^(i-1), 2^i) ns.
func (r *StatsRegistry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// histBuckets covers latencies up to 2^39 ns (~9 minutes) per call.
const histBuckets = 40

// LayerStats aggregates one pipeline stage's reads, writes and deletes.
// Batch calls count once in calls and per-page in items.
type LayerStats struct {
	read   opStats
	write  opStats
	delete opStats
	sel    opStats
}

func (ls *LayerStats) snapshot() LayerSnapshot {
	return LayerSnapshot{
		Read:   ls.read.snapshot(),
		Write:  ls.write.snapshot(),
		Delete: ls.delete.snapshot(),
		Select: ls.sel.snapshot(),
	}
}

type opStats struct {
	calls  atomic.Uint64
	items  atomic.Uint64
	errors atomic.Uint64
	bytes  atomic.Uint64
	hist   [histBuckets]atomic.Uint64
}

func (s *opStats) record(elapsed time.Duration, items, errs int, nbytes int) {
	s.calls.Add(1)
	s.items.Add(uint64(items))
	s.errors.Add(uint64(errs))
	s.bytes.Add(uint64(nbytes))
	b := bits.Len64(uint64(elapsed.Nanoseconds()))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	s.hist[b].Add(1)
}

func (s *opStats) snapshot() OpSnapshot {
	snap := OpSnapshot{
		Calls:  s.calls.Load(),
		Items:  s.items.Load(),
		Errors: s.errors.Load(),
		Bytes:  s.bytes.Load(),
	}
	last := -1
	for i := range s.hist {
		if s.hist[i].Load() > 0 {
			last = i
		}
	}
	snap.LatNSPow2 = make([]uint64, last+1)
	for i := 0; i <= last; i++ {
		snap.LatNSPow2[i] = s.hist[i].Load()
	}
	return snap
}

// LayerSnapshot is the JSON shape of one layer.
type LayerSnapshot struct {
	Read   OpSnapshot `json:"read"`
	Write  OpSnapshot `json:"write"`
	Delete OpSnapshot `json:"delete"`
	Select OpSnapshot `json:"select"`
}

// OpSnapshot is the JSON shape of one operation class. LatNSPow2 is trimmed
// after its last non-zero bucket.
type OpSnapshot struct {
	Calls     uint64   `json:"calls"`
	Items     uint64   `json:"items"`
	Errors    uint64   `json:"errors"`
	Bytes     uint64   `json:"bytes"`
	LatNSPow2 []uint64 `json:"lat_ns_pow2"`
}

// Meter returns a middleware recording every operation that crosses it into
// reg's layer named name. Each retry attempt below an outer stage is its own
// inner-stage call, so stacking Meter above and below Retry exposes the
// retry amplification. A nil registry yields an identity stage.
func Meter(reg *StatsRegistry, name string) Middleware {
	return func(next Handler) Handler {
		if reg == nil {
			return next
		}
		return &meter{next: next, stats: reg.Layer(name), now: reg.now}
	}
}

type meter struct {
	next  Handler
	stats *LayerStats
	now   func() time.Time
}

func errCount(err error) int {
	if err != nil {
		return 1
	}
	return 0
}

func (m *meter) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	start := m.now()
	data, err := m.next.ReadPage(ctx, ref)
	m.stats.read.record(m.now().Sub(start), 1, errCount(err), len(data))
	return data, err
}

func (m *meter) WritePage(ctx context.Context, req WriteReq) error {
	start := m.now()
	err := m.next.WritePage(ctx, req)
	m.stats.write.record(m.now().Sub(start), 1, errCount(err), len(req.Data))
	return err
}

func (m *meter) Delete(ctx context.Context, ref Ref) error {
	start := m.now()
	err := m.next.Delete(ctx, ref)
	m.stats.delete.record(m.now().Sub(start), 1, errCount(err), 0)
	return err
}

func (m *meter) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	start := m.now()
	out, err := m.next.ReadBatch(ctx, refs)
	nerr, nbytes := 0, 0
	for _, e := range ItemErrors(err, len(refs)) {
		if e != nil {
			nerr++
		}
	}
	for _, data := range out {
		nbytes += len(data)
	}
	m.stats.read.record(m.now().Sub(start), len(refs), nerr, nbytes)
	return out, err
}

func (m *meter) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	start := m.now()
	err := m.next.WriteBatch(ctx, reqs)
	nerr, nbytes := 0, 0
	for _, e := range ItemErrors(err, len(reqs)) {
		if e != nil {
			nerr++
		}
	}
	for _, req := range reqs {
		nbytes += len(req.Data)
	}
	m.stats.write.record(m.now().Sub(start), len(reqs), nerr, nbytes)
	return err
}
