package pageio

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/faultinject"
)

// errHandler fails every operation with a fixed error, counting calls.
type errHandler struct {
	err   error
	calls int
}

func (h *errHandler) ReadPage(context.Context, Ref) ([]byte, error) {
	h.calls++
	return nil, h.err
}
func (h *errHandler) WritePage(context.Context, WriteReq) error {
	h.calls++
	return h.err
}
func (h *errHandler) ReadBatch(_ context.Context, refs []Ref) ([][]byte, error) {
	h.calls++
	return make([][]byte, len(refs)), h.err
}
func (h *errHandler) WriteBatch(context.Context, []WriteReq) error {
	h.calls++
	return h.err
}
func (h *errHandler) Delete(context.Context, Ref) error {
	h.calls++
	return h.err
}

// TestRetryWriteStopsOnContextError is the regression test for the canceled
// flush bug: a write that fails with the operation's own cancellation must
// surface it at once, not burn the write budget sleeping and come back as
// ErrExhausted. The returned error is what matters — the middleware's own
// ctx may not have ticked over yet when the inner handler observed it.
func TestRetryWriteStopsOnContextError(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"canceled", context.Canceled},
		{"deadline", context.DeadlineExceeded},
		{"wrapped", fmt.Errorf("upload chunk 3: %w", context.Canceled)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inner := &errHandler{err: tc.err}
			h := Chain(inner, Retry(Policy{WriteAttempts: 5}))
			err := h.WritePage(context.Background(), WriteReq{Ref: Ref{Key: "k"}, Data: []byte("x")})
			if !errors.Is(err, tc.err) || errors.Is(err, ErrExhausted) {
				t.Fatalf("err = %v, want bare %v", err, tc.err)
			}
			if inner.calls != 1 {
				t.Fatalf("attempts = %d, want 1 (no retry on ctx error)", inner.calls)
			}
		})
	}
}

// TestRetryReadStopsOnContextError: same discipline on the read path, even
// under a retry-everything read policy.
func TestRetryReadStopsOnContextError(t *testing.T) {
	inner := &errHandler{err: fmt.Errorf("get: %w", context.DeadlineExceeded)}
	h := Chain(inner, Retry(Policy{ReadAttempts: 5, RetryRead: retryAll}))
	_, err := h.ReadPage(context.Background(), Ref{Key: "k"})
	if !errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want deadline without exhaustion", err)
	}
	if inner.calls != 1 {
		t.Fatalf("attempts = %d, want 1", inner.calls)
	}
}

// TestRetryDeleteUsesWritePolicy is the regression test for the
// forward-only Delete: a transiently failing delete must recover within the
// write budget (deletes are idempotent under never-write-twice), and a
// persistently failing one must wrap ErrExhausted like a write would.
func TestRetryDeleteUsesWritePolicy(t *testing.T) {
	plan := faultinject.New(11).FailNext(faultinject.PipeDelete, 2)
	h := Chain(NewStore(memStore(), nil),
		Retry(Policy{WriteAttempts: 3}),
		Faults(plan),
	)
	if err := h.Delete(context.Background(), Ref{Key: "k"}); err != nil {
		t.Fatalf("delete should retry through 2 injected failures: %v", err)
	}
	if got := plan.Calls(faultinject.PipeDelete); got != 3 {
		t.Errorf("pipe.delete calls = %d, want 3 (2 failures + success)", got)
	}

	plan2 := faultinject.New(11).Always(faultinject.PipeDelete)
	h2 := Chain(NewStore(memStore(), nil),
		Retry(Policy{WriteAttempts: 3}),
		Faults(plan2),
	)
	err := h2.Delete(context.Background(), Ref{Key: "k"})
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want exhausted injected", err)
	}
	if got := plan2.Injected(); got != 3 {
		t.Errorf("injected = %d, want 3 delete attempts", got)
	}

	// And the ctx-error discipline applies to deletes too.
	inner := &errHandler{err: context.Canceled}
	h3 := Chain(inner, Retry(Policy{WriteAttempts: 5}))
	if err := h3.Delete(context.Background(), Ref{Key: "k"}); !errors.Is(err, context.Canceled) || errors.Is(err, ErrExhausted) {
		t.Fatalf("delete ctx err = %v, want bare context.Canceled", err)
	}
	if inner.calls != 1 {
		t.Fatalf("delete attempts = %d, want 1", inner.calls)
	}
}

// TestCoalesceFailedSpanFallsBack: when the merged read fails, Coalesce must
// degrade to per-page reads instead of smearing one error over every ref in
// the span. A transient failure therefore recovers completely; a persistent
// single-page failure pins the error to that page alone.
func TestCoalesceFailedSpanFallsBack(t *testing.T) {
	ctx := context.Background()
	const page = 64
	dev := blockdev.NewMem(blockdev.Config{Capacity: 1 << 16})
	seed := Chain(NewDevice(dev, nil))
	for i := 0; i < 4; i++ {
		if err := seed.WritePage(ctx, WriteReq{Ref: Ref{Off: int64(i * page)}, Data: fill(page, byte(i+1))}); err != nil {
			t.Fatalf("seed write: %v", err)
		}
	}
	refs := make([]Ref, 4)
	for i := range refs {
		refs[i] = Ref{Off: int64(i * page), Len: page}
	}

	// Transient: only the merged span read fails; the per-page fallback
	// succeeds and the caller sees clean data.
	plan := faultinject.New(3).FailNext(faultinject.PipeRead, 1)
	h := Chain(NewDevice(dev, nil), Coalesce(0), Faults(plan))
	out, err := h.ReadBatch(ctx, refs)
	if err != nil {
		t.Fatalf("transient span failure should fall back cleanly: %v", err)
	}
	for i, data := range out {
		if len(data) != page || data[0] != byte(i+1) {
			t.Errorf("page %d content wrong after fallback", i)
		}
	}

	// Persistent: the page at offset 0 fails both as the merged span
	// (detail "0") and as its own fallback read — but only that ref errors.
	plan2 := faultinject.New(3).Always(faultinject.PipeRead.With("0"))
	h2 := Chain(NewDevice(dev, nil), Coalesce(0), Faults(plan2))
	out2, err2 := h2.ReadBatch(ctx, refs)
	if err2 == nil {
		t.Fatal("persistent page failure must surface")
	}
	errs := ItemErrors(err2, len(refs))
	if !errors.Is(errs[0], faultinject.ErrInjected) {
		t.Fatalf("errs[0] = %v, want injected", errs[0])
	}
	for i := 1; i < 4; i++ {
		if errs[i] != nil {
			t.Errorf("errs[%d] = %v, want nil (per-item granularity)", i, errs[i])
		}
		if len(out2[i]) != page || out2[i][0] != byte(i+1) {
			t.Errorf("page %d lost its data to a neighbour's failure", i)
		}
	}
}

// errBadSector is the identity carried by rangeFaultDev failures.
var errBadSector = errors.New("bad sector")

// rangeFaultDev models a device with bad extents: any read overlapping a bad
// byte range fails, whatever the request shape. This is how a merged read
// over a bad page actually fails — the whole scatter-gather request errors —
// unlike detail-keyed injection, which only fires on an exact request match.
// Batch reads fail per item, mirroring the terminal adapters.
type rangeFaultDev struct {
	next Handler
	bad  func(off int64, n int) bool
}

func (d *rangeFaultDev) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	if d.bad(ref.Off, ref.Len) {
		return nil, fmt.Errorf("%w: [%d,+%d)", errBadSector, ref.Off, ref.Len)
	}
	return d.next.ReadPage(ctx, ref)
}
func (d *rangeFaultDev) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	out := make([][]byte, len(refs))
	errs := make([]error, len(refs))
	for i, ref := range refs {
		out[i], errs[i] = d.ReadPage(ctx, ref)
	}
	return out, batchErr(errs)
}
func (d *rangeFaultDev) WritePage(ctx context.Context, req WriteReq) error {
	return d.next.WritePage(ctx, req)
}
func (d *rangeFaultDev) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	return d.next.WriteBatch(ctx, reqs)
}
func (d *rangeFaultDev) Delete(ctx context.Context, ref Ref) error {
	return d.next.Delete(ctx, ref)
}

// TestCoalesceErrorEquivalence is the property test: for random batches over
// random persistent bad pages, Coalesce(h) and h must agree item-by-item on
// both data and error identity — coalescing is a pure optimisation.
func TestCoalesceErrorEquivalence(t *testing.T) {
	ctx := context.Background()
	const page = 32
	const pages = 16
	rnd := rand.New(rand.NewSource(42))

	for trial := 0; trial < 100; trial++ {
		dev := blockdev.NewMem(blockdev.Config{Capacity: page * pages})
		seed := Chain(NewDevice(dev, nil))
		for i := 0; i < pages; i++ {
			if err := seed.WritePage(ctx, WriteReq{Ref: Ref{Off: int64(i * page)}, Data: fill(page, byte(i+1))}); err != nil {
				t.Fatalf("seed: %v", err)
			}
		}

		// A random subset of pages goes bad, persistently and identically
		// in both pipelines.
		bad := map[int]bool{}
		for i := 0; i < pages; i++ {
			if rnd.Intn(4) == 0 {
				bad[i] = true
			}
		}
		overlapsBad := func(off int64, n int) bool {
			for p := int(off) / page; p <= (int(off)+n-1)/page; p++ {
				if bad[p] {
					return true
				}
			}
			return false
		}

		// Random distinct pages, shuffled order.
		perm := rnd.Perm(pages)
		n := 2 + rnd.Intn(pages-2)
		refs := make([]Ref, n)
		for j := 0; j < n; j++ {
			refs[j] = Ref{Off: int64(perm[j] * page), Len: page}
		}

		bare := &rangeFaultDev{next: NewDevice(dev, nil), bad: overlapsBad}
		coal := Chain(&rangeFaultDev{next: NewDevice(dev, nil), bad: overlapsBad}, Coalesce(0))

		bOut, bErr := bare.ReadBatch(ctx, refs)
		cOut, cErr := coal.ReadBatch(ctx, refs)

		bErrs := ItemErrors(bErr, n)
		cErrs := ItemErrors(cErr, n)
		for j := 0; j < n; j++ {
			if (bErrs[j] == nil) != (cErrs[j] == nil) {
				t.Fatalf("trial %d ref %d (%s): error mismatch bare=%v coal=%v",
					trial, j, refs[j].Detail(), bErrs[j], cErrs[j])
			}
			if bErrs[j] != nil && !errors.Is(cErrs[j], errBadSector) {
				t.Fatalf("trial %d ref %d: coalesced error lost identity: %v", trial, j, cErrs[j])
			}
			if bErrs[j] == nil && string(bOut[j]) != string(cOut[j]) {
				t.Fatalf("trial %d ref %d: data mismatch", trial, j)
			}
		}
	}
}
