package pageio

import (
	"context"
	"testing"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/faultinject"
	"cloudiq/internal/trace"
)

func attrMap(s trace.SpanData) map[string]string {
	m := make(map[string]string, len(s.Attrs))
	for _, a := range s.Attrs {
		m[a.Key] = a.Value
	}
	return m
}

// TestTraceMiddlewareSpans: the Trace stage opens one span per operation
// carrying the layer name, and the Retry stage annotates that same span with
// its attempt count when it had to retry.
func TestTraceMiddlewareSpans(t *testing.T) {
	store := memStore()
	put(t, store, "page", []byte("payload"))

	plan := faultinject.New(9).FailNext(faultinject.PipeRead, 2)
	h := Chain(NewStore(store, nil),
		Trace("dbspace:t"),
		Retry(Policy{ReadAttempts: 5, RetryRead: retryAll}),
		Faults(plan),
	)

	tr := trace.New(trace.Config{})
	ctx, root := trace.Root(context.Background(), tr, "op")
	if _, err := h.ReadPage(ctx, Ref{Key: "page"}); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := h.WritePage(ctx, WriteReq{Ref: Ref{Key: "k2"}, Data: []byte("abc"), Async: true}); err != nil {
		t.Fatalf("write: %v", err)
	}
	root.End()

	spans, _ := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3 (read, write, root)", len(spans))
	}
	read, write := spans[0], spans[1]
	if read.Name != "pageio.read" || write.Name != "pageio.write" {
		t.Fatalf("span names = %q, %q", read.Name, write.Name)
	}
	ra, wa := attrMap(read), attrMap(write)
	if ra["layer"] != "dbspace:t" || ra["ref"] != "page" {
		t.Errorf("read attrs = %v", ra)
	}
	if ra["retry.attempts"] != "3" {
		t.Errorf("read retry.attempts = %q, want 3 (2 failures + success)", ra["retry.attempts"])
	}
	if ra["bytes"] != "7" {
		t.Errorf("read bytes = %q, want 7", ra["bytes"])
	}
	if wa["bytes"] != "3" || wa["async"] != "true" {
		t.Errorf("write attrs = %v", wa)
	}
	if read.Parent != spans[2].ID || write.Parent != spans[2].ID {
		t.Errorf("pageio spans must be children of the root")
	}
}

// TestTraceMiddlewareCoalesceAnnotation: Coalesce records its merge decision
// on the batch span opened by the Trace stage above it.
func TestTraceMiddlewareCoalesceAnnotation(t *testing.T) {
	ctx0 := context.Background()
	const page = 64
	dev := blockdev.NewMem(blockdev.Config{Capacity: 1 << 16})
	h := Chain(NewDevice(dev, nil), Trace("dev:t"), Coalesce(0))

	var reqs []WriteReq
	for i := 0; i < 4; i++ {
		reqs = append(reqs, WriteReq{Ref: Ref{Off: int64(i * page)}, Data: fill(page, byte(i+1))})
	}
	tr := trace.New(trace.Config{})
	ctx, root := trace.Root(ctx0, tr, "op")
	if err := h.WriteBatch(ctx, reqs); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	var refs []Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, Ref{Off: int64(i * page), Len: page})
	}
	if _, err := h.ReadBatch(ctx, refs); err != nil {
		t.Fatalf("read batch: %v", err)
	}
	root.End()

	spans, _ := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	wb, rb := attrMap(spans[0]), attrMap(spans[1])
	if wb["coalesce.refs"] != "4" || wb["coalesce.spans"] != "1" {
		t.Errorf("write merge attrs = %v", wb)
	}
	if rb["coalesce.refs"] != "4" || rb["coalesce.spans"] != "1" {
		t.Errorf("read merge attrs = %v", rb)
	}
	if rb["items"] != "4" || rb["bytes"] != "256" {
		t.Errorf("readbatch attrs = %v", rb)
	}
}

// TestTraceMiddlewareOff: with no span in the context, the pipeline records
// nothing and behaves identically.
func TestTraceMiddlewareOff(t *testing.T) {
	store := memStore()
	put(t, store, "page", []byte("payload"))
	h := Chain(NewStore(store, nil), Trace("dbspace:t"))
	data, err := h.ReadPage(context.Background(), Ref{Key: "page"})
	if err != nil || string(data) != "payload" {
		t.Fatalf("read = %q, %v", data, err)
	}
}
