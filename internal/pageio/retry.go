package pageio

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cloudiq/internal/iomodel"
	"cloudiq/internal/objstore"
	"cloudiq/internal/trace"
)

// ErrExhausted is wrapped into every failure that burned through all retry
// attempts. Match it with errors.Is.
var ErrExhausted = errors.New("pageio: retries exhausted")

// Policy configures the Retry middleware, the paper's retry-until-found
// discipline (§3): under eventual consistency a freshly written key may not
// be visible yet, so reads that miss are retried with capped exponential
// backoff; writes are retried on any error because the key is never reused
// (never-write-twice makes write retries idempotent).
type Policy struct {
	// ReadAttempts and WriteAttempts bound the total tries per operation
	// (minimum 1 each).
	ReadAttempts  int
	WriteAttempts int

	// Delay is the first backoff; it doubles per retry up to Cap. A zero Cap
	// leaves the backoff uncapped.
	Delay time.Duration
	Cap   time.Duration

	// Scale charges simulated time for each backoff. Nil skips sleeping,
	// which keeps unit tests instant.
	Scale *iomodel.Scale

	// RetryRead decides which read errors are retryable. Nil defaults to
	// objstore.ErrNotFound only: any other read failure is surfaced
	// immediately.
	RetryRead func(error) bool

	// Pool bounds the fan-out of batch operations, which retry each item
	// independently. Nil runs batch items sequentially.
	Pool *WorkPool
}

func (p Policy) retryRead(err error) bool {
	if p.RetryRead != nil {
		return p.RetryRead(err)
	}
	return errors.Is(err, objstore.ErrNotFound)
}

func (p Policy) sleep(d time.Duration) {
	if p.Scale != nil {
		p.Scale.Sleep(d)
	}
}

// Retry returns the retry middleware for p.
func Retry(p Policy) Middleware {
	if p.ReadAttempts < 1 {
		p.ReadAttempts = 1
	}
	if p.WriteAttempts < 1 {
		p.WriteAttempts = 1
	}
	return func(next Handler) Handler {
		return &retry{next: next, p: p}
	}
}

type retry struct {
	next Handler
	p    Policy
}

// backoff sleeps the current delay and returns the next one, doubled and
// capped.
func (r *retry) backoff(d time.Duration) time.Duration {
	r.p.sleep(d)
	d *= 2
	if r.p.Cap > 0 && d > r.p.Cap {
		d = r.p.Cap
	}
	return d
}

// ctxAborted reports whether err is the operation's own cancellation or
// deadline. Retrying such an error burns the remaining attempt budget
// sleeping and then masks the ctx error behind ErrExhausted, so the retry
// loops surface it immediately. The returned error is checked — not just
// ctx.Err() between attempts — because a handler may observe the deadline
// while this middleware's own ctx check races ahead of it.
func ctxAborted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// noteRetries annotates the context's span once an operation needed more
// than one attempt.
func noteRetries(ctx context.Context, attempts int, backoff time.Duration) {
	if attempts <= 1 {
		return
	}
	sp := trace.From(ctx)
	sp.AddInt("retry.attempts", int64(attempts))
	sp.AddInt("retry.backoff_ns", int64(backoff))
}

func (r *retry) ReadPage(ctx context.Context, ref Ref) ([]byte, error) {
	delay := r.p.Delay
	var err error
	var slept time.Duration
	attempts := 0
	for attempt := 0; attempt < r.p.ReadAttempts; attempt++ {
		if attempt > 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			slept += delay
			delay = r.backoff(delay)
		}
		attempts++
		var data []byte
		data, err = r.next.ReadPage(ctx, ref)
		if err == nil {
			noteRetries(ctx, attempts, slept)
			return data, nil
		}
		if ctxAborted(err) || !r.p.retryRead(err) {
			return nil, err
		}
	}
	noteRetries(ctx, attempts, slept)
	if r.p.ReadAttempts == 1 {
		return nil, err
	}
	return nil, fmt.Errorf("%w: read %s after %d attempts: %w",
		ErrExhausted, ref.Detail(), r.p.ReadAttempts, err)
}

// retryWrite runs op under the write-retry policy shared by WritePage and
// Delete: both are idempotent under the never-write-twice discipline, so
// re-issuing either against a throttled or flaky store is safe.
func (r *retry) retryWrite(ctx context.Context, verb string, detail func() string, op func() error) error {
	delay := r.p.Delay
	var err error
	var slept time.Duration
	attempts := 0
	for attempt := 0; attempt < r.p.WriteAttempts; attempt++ {
		if attempt > 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			slept += delay
			delay = r.backoff(delay)
		}
		attempts++
		if err = op(); err == nil {
			noteRetries(ctx, attempts, slept)
			return nil
		}
		if ctxAborted(err) {
			return err
		}
	}
	noteRetries(ctx, attempts, slept)
	if r.p.WriteAttempts == 1 {
		return err
	}
	return fmt.Errorf("%w: %s %s after %d attempts: %w",
		ErrExhausted, verb, detail(), r.p.WriteAttempts, err)
}

func (r *retry) WritePage(ctx context.Context, req WriteReq) error {
	return r.retryWrite(ctx, "write", req.Ref.Detail, func() error {
		return r.next.WritePage(ctx, req)
	})
}

// Delete shares the write budget: a GC or drop delete against a store in a
// throttling brown-out must recover the same way writes do, and deleting an
// already-deleted key is a no-op at every terminal.
func (r *retry) Delete(ctx context.Context, ref Ref) error {
	return r.retryWrite(ctx, "delete", ref.Detail, func() error {
		return r.next.Delete(ctx, ref)
	})
}

// ReadBatch retries each item independently through ReadPage so one slow key
// (an eventual-consistency straggler) cannot fail its neighbours.
func (r *retry) ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error) {
	out := make([][]byte, len(refs))
	errs := r.p.Pool.Do(ctx, len(refs), func(i int) error {
		data, err := r.ReadPage(ctx, refs[i])
		if err != nil {
			return err
		}
		out[i] = data
		return nil
	})
	return out, batchErr(errs)
}

func (r *retry) WriteBatch(ctx context.Context, reqs []WriteReq) error {
	errs := r.p.Pool.Do(ctx, len(reqs), func(i int) error {
		return r.WritePage(ctx, reqs[i])
	})
	return batchErr(errs)
}
