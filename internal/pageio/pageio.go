// Package pageio unifies the engine's storage I/O behind one typed request
// interface with composable middleware. Every page read or write issued by
// the buffer pool, the blockmap, the OCM, the table loader and the WAL flows
// through a Handler pipeline assembled from the stages in this package:
//
//	Meter("dbspace:x") -> Retry -> [cache] -> Meter("store:x") -> store
//	Meter("dbspace:y") -> Coalesce -> Meter("dev:y") -> device
//
// so there is exactly one place to batch, one place to retry, and one place
// to measure. Middleware composes http-style: a Middleware wraps a Handler
// and returns a Handler, and Chain applies them first-listed-outermost.
package pageio

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Ref names one page-sized unit of storage. A Ref is either an object-store
// reference (Key != "") or a block-device reference (Key == "", addressed by
// byte offset and length).
type Ref struct {
	Key string // object key, or "" for a block-device reference
	Off int64  // byte offset on the device (block refs only)
	Len int    // read length in bytes (block reads; writes use len(Data))
}

// IsBlock reports whether the ref addresses a block device.
func (r Ref) IsBlock() bool { return r.Key == "" }

// Detail renders the ref for fault-site and error messages.
func (r Ref) Detail() string {
	if r.IsBlock() {
		return strconv.FormatInt(r.Off, 10)
	}
	return r.Key
}

// WriteReq is one page write. Async marks write-back intent: a caching layer
// may acknowledge the write after staging it locally and upload later, while
// a synchronous write (Async=false) must be durable on the backing store
// when WritePage returns.
type WriteReq struct {
	Ref   Ref
	Data  []byte
	Async bool
}

// Handler is the uniform page-I/O interface. Batch operations are
// positional: ReadBatch returns one slice per ref (nil for failed items) and
// both batch calls report per-item failures through a *BatchError.
type Handler interface {
	ReadPage(ctx context.Context, ref Ref) ([]byte, error)
	WritePage(ctx context.Context, req WriteReq) error
	ReadBatch(ctx context.Context, refs []Ref) ([][]byte, error)
	WriteBatch(ctx context.Context, reqs []WriteReq) error
	Delete(ctx context.Context, ref Ref) error
}

// Middleware wraps a Handler with one pipeline stage.
type Middleware func(Handler) Handler

// Chain composes middleware around a terminal handler. The first middleware
// listed becomes the outermost stage, so
//
//	Chain(store, Meter(reg, "dbspace"), Retry(p))
//
// meters every caller-visible operation and retries inside the meter.
func Chain(h Handler, mws ...Middleware) Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// BatchError reports per-item failures of a batch operation. Errs is aligned
// with the request slice: Errs[i] == nil means item i succeeded. A batch
// call returns nil (not an empty BatchError) when every item succeeds.
type BatchError struct {
	Errs []error
}

func (e *BatchError) Error() string {
	n := 0
	var first error
	for _, err := range e.Errs {
		if err != nil {
			n++
			if first == nil {
				first = err
			}
		}
	}
	if n == 1 {
		return fmt.Sprintf("pageio: 1 of %d batch items failed: %v", len(e.Errs), first)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pageio: %d of %d batch items failed:", n, len(e.Errs))
	for i, err := range e.Errs {
		if err != nil {
			fmt.Fprintf(&b, "\n\titem %d: %v", i, err)
		}
	}
	return b.String()
}

// Unwrap exposes the non-nil item errors so errors.Is and errors.As see
// through the batch.
func (e *BatchError) Unwrap() []error {
	var errs []error
	for _, err := range e.Errs {
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// batchErr folds a positional error slice into a batch result: nil when all
// items succeeded, otherwise a *BatchError carrying the slice.
func batchErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return &BatchError{Errs: errs}
		}
	}
	return nil
}

// ItemErrors expands a batch error into one error per item: nil yields all
// nils, a (possibly wrapped) *BatchError of matching length yields its
// positional slice, and any other error (a whole-batch failure) is
// replicated to every position.
func ItemErrors(err error, n int) []error {
	errs := make([]error, n)
	if err == nil {
		return errs
	}
	var be *BatchError
	if errors.As(err, &be) && len(be.Errs) == n {
		copy(errs, be.Errs)
		return errs
	}
	for i := range errs {
		errs[i] = err
	}
	return errs
}
