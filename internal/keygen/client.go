package keygen

import (
	"context"
	"fmt"
	"sync"

	"cloudiq/internal/rfrb"
)

// AllocFunc requests a key range of size n for the client's node. Locally it
// is a direct call into the Generator (the coordinator "does not need to
// make an RPC call on self"); on secondary nodes it is an RPC.
type AllocFunc func(ctx context.Context, n uint64) (rfrb.Range, error)

// Client is the per-node key cache. When the cached range is exhausted it
// requests a new one, adapting the request size to the node's consumption
// rate: a refill that arrives while the previous range was drained quickly
// doubles the next request (up to MaxRangeSize); sustained idleness shrinks
// it back toward DefaultRangeSize. Client is safe for concurrent use.
type Client struct {
	alloc AllocFunc

	mu        sync.Mutex
	cur       rfrb.Range // [cur.Start, cur.End) remaining cached keys
	rangeSize uint64
	refills   int64
	handedOut int64
}

// NewClient returns a Client drawing ranges through alloc.
func NewClient(alloc AllocFunc) *Client {
	return &Client{alloc: alloc, rangeSize: DefaultRangeSize}
}

// Discard drops the cached key range. The keys are burned — never handed
// out again — which a point-in-time restore relies on: everything allocated
// before the restore is scheduled for deletion when its retention ends, so
// vending those keys to new writes would eventually delete live pages.
func (c *Client) Discard() {
	c.mu.Lock()
	c.cur = rfrb.Range{}
	c.mu.Unlock()
}

// NextKey returns the next unique object key, refilling the cache as needed.
func (c *Client) NextKey(ctx context.Context) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur.Start >= c.cur.End {
		if err := c.refillLocked(ctx); err != nil {
			return 0, err
		}
	}
	k := c.cur.Start
	c.cur.Start++
	c.handedOut++
	return k, nil
}

// NextRange returns a contiguous run of n keys, spanning refills if needed.
// The returned ranges are contiguous internally but the run as a whole may
// be split across cached ranges.
func (c *Client) NextRange(ctx context.Context, n uint64) ([]rfrb.Range, error) {
	if n == 0 {
		return nil, fmt.Errorf("keygen: zero-length key request")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []rfrb.Range
	for n > 0 {
		if c.cur.Start >= c.cur.End {
			if err := c.refillLocked(ctx); err != nil {
				return nil, err
			}
		}
		take := c.cur.End - c.cur.Start
		if take > n {
			take = n
		}
		out = append(out, rfrb.Range{Start: c.cur.Start, End: c.cur.Start + take})
		c.cur.Start += take
		c.handedOut += int64(take)
		n -= take
	}
	return out, nil
}

func (c *Client) refillLocked(ctx context.Context) error {
	// Load-adaptive sizing: consuming a full range quickly (i.e. needing
	// another refill at all) doubles the request, bounded by MaxRangeSize.
	// The first refill uses the default.
	if c.refills > 0 && c.rangeSize < MaxRangeSize {
		c.rangeSize *= 2
	}
	r, err := c.alloc(ctx, c.rangeSize)
	if err != nil {
		return fmt.Errorf("keygen: refill: %w", err)
	}
	if r.Len() == 0 {
		return fmt.Errorf("keygen: allocator returned empty range")
	}
	c.cur = r
	c.refills++
	return nil
}

// Shrink halves the next request size (not below DefaultRangeSize). Engines
// call it at quiet points — e.g. when a transaction commits with most of the
// cached range unused.
func (c *Client) Shrink() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rangeSize/2 >= DefaultRangeSize {
		c.rangeSize /= 2
	}
}

// Stats reports refill RPCs issued and keys handed out, for the key-range
// ablation bench.
func (c *Client) Stats() (refills, keys int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refills, c.handedOut
}

// Remaining reports the number of keys left in the cached range.
func (c *Client) Remaining() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur.End - c.cur.Start
}
