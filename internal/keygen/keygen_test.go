package keygen

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/rfrb"
	"cloudiq/internal/wal"
)

func ctxb() context.Context { return context.Background() }

func newLog(t *testing.T) *wal.Log {
	t.Helper()
	l, err := wal.Open(ctxb(), blockdev.NewMem(blockdev.Config{Growable: true}))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAllocateMonotonicAndInReservedRange(t *testing.T) {
	g := NewGenerator(nil)
	var prev uint64
	for i := 0; i < 100; i++ {
		r, err := g.Allocate(ctxb(), "w1", 10)
		if err != nil {
			t.Fatal(err)
		}
		if !rfrb.IsCloudKey(r.Start) || !rfrb.IsCloudKey(r.End-1) {
			t.Fatalf("range %v outside reserved cloud range", r)
		}
		if r.Start < prev {
			t.Fatalf("range %v not monotonically increasing past %d", r, prev)
		}
		prev = r.End
	}
	if got := g.MaxAllocated(); got != rfrb.CloudKeyBase+1000 {
		t.Fatalf("MaxAllocated = %d, want base+1000", got)
	}
}

func TestAllocateZeroRejected(t *testing.T) {
	g := NewGenerator(nil)
	if _, err := g.Allocate(ctxb(), "w1", 0); err == nil {
		t.Fatal("zero allocation accepted")
	}
}

func TestActiveSetTracksOutstandingRanges(t *testing.T) {
	g := NewGenerator(nil)
	r1, _ := g.Allocate(ctxb(), "w1", 100)
	_, _ = g.Allocate(ctxb(), "w2", 50)

	if got := g.ActiveSet("w1"); len(got) != 1 || got[0] != r1 {
		t.Fatalf("ActiveSet(w1) = %v, want [%v]", got, r1)
	}
	if got := len(g.Nodes()); got != 2 {
		t.Fatalf("Nodes = %v", g.Nodes())
	}

	// Commit consumes the first 30 keys of w1's range.
	var consumed rfrb.Bitmap
	consumed.Add(r1.Start, r1.Start+30)
	g.OnCommit("w1", &consumed)
	got := g.ActiveSet("w1")
	if len(got) != 1 || got[0].Start != r1.Start+30 || got[0].End != r1.End {
		t.Fatalf("ActiveSet after commit = %v", got)
	}
}

func TestOnCommitIgnoresBlockRangesAndUnknownNodes(t *testing.T) {
	g := NewGenerator(nil)
	r, _ := g.Allocate(ctxb(), "w1", 10)
	var consumed rfrb.Bitmap
	consumed.Add(100, 200) // conventional block range, not a cloud key
	g.OnCommit("w1", &consumed)
	if got := g.ActiveSet("w1"); len(got) != 1 || got[0] != r {
		t.Fatalf("block ranges must not affect the active set: %v", got)
	}
	g.OnCommit("ghost", &consumed) // must not panic
}

func TestOnCommitFullConsumptionDropsNode(t *testing.T) {
	g := NewGenerator(nil)
	r, _ := g.Allocate(ctxb(), "w1", 10)
	var consumed rfrb.Bitmap
	consumed.AddRange(r)
	g.OnCommit("w1", &consumed)
	if got := g.ActiveSet("w1"); got != nil {
		t.Fatalf("ActiveSet = %v, want nil", got)
	}
	if got := g.Nodes(); len(got) != 0 {
		t.Fatalf("Nodes = %v, want empty", got)
	}
}

func TestReleaseNode(t *testing.T) {
	g := NewGenerator(nil)
	r, _ := g.Allocate(ctxb(), "w1", 100)
	got := g.ReleaseNode("w1")
	if len(got) != 1 || got[0] != r {
		t.Fatalf("ReleaseNode = %v, want [%v]", got, r)
	}
	if g.ActiveSet("w1") != nil {
		t.Fatal("active set not cleared after release")
	}
	if g.ReleaseNode("w1") != nil {
		t.Fatal("second release returned ranges")
	}
}

func TestAllocationLoggedAndRecovered(t *testing.T) {
	log := newLog(t)
	g := NewGenerator(log)
	r1, _ := g.Allocate(ctxb(), "w1", 100)
	r2, _ := g.Allocate(ctxb(), "w2", 50)

	// Crash: build a fresh generator and replay the log.
	g2 := NewGenerator(nil)
	err := log.Replay(ctxb(), func(rec wal.Record) error {
		if rec.Type != wal.RecAlloc {
			return nil
		}
		node, r, err := ParseAllocPayload(rec.Payload)
		if err != nil {
			return err
		}
		g2.ApplyAlloc(node, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.MaxAllocated(); got != r2.End {
		t.Fatalf("recovered MaxAllocated = %d, want %d", got, r2.End)
	}
	if got := g2.ActiveSet("w1"); len(got) != 1 || got[0] != r1 {
		t.Fatalf("recovered ActiveSet(w1) = %v", got)
	}
	// A post-recovery allocation must not reuse any key.
	r3, _ := g2.Allocate(ctxb(), "w1", 10)
	if r3.Start < r2.End {
		t.Fatalf("post-recovery range %v overlaps pre-crash allocations", r3)
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	g := NewGenerator(nil)
	_, _ = g.Allocate(ctxb(), "w1", 100)
	r2, _ := g.Allocate(ctxb(), "w2", 50)
	payload := g.CheckpointPayload()

	g2 := NewGenerator(nil)
	if err := g2.RestoreCheckpoint(payload); err != nil {
		t.Fatal(err)
	}
	if g2.MaxAllocated() != g.MaxAllocated() {
		t.Fatalf("restored max = %d, want %d", g2.MaxAllocated(), g.MaxAllocated())
	}
	if got := g2.ActiveSet("w2"); len(got) != 1 || got[0] != r2 {
		t.Fatalf("restored ActiveSet(w2) = %v", got)
	}
}

func TestRestoreCheckpointRejectsCorrupt(t *testing.T) {
	g := NewGenerator(nil)
	if err := g.RestoreCheckpoint([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
	_, _ = g.Allocate(ctxb(), "w1", 10)
	p := g.CheckpointPayload()
	if err := NewGenerator(nil).RestoreCheckpoint(p[:len(p)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestParseAllocPayloadErrors(t *testing.T) {
	if _, _, err := ParseAllocPayload(nil); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, _, err := ParseAllocPayload([]byte{5, 0, 'a'}); err == nil {
		t.Fatal("truncated payload accepted")
	}
	p := AllocPayload("node-1", rfrb.Range{Start: 10, End: 20})
	node, r, err := ParseAllocPayload(p)
	if err != nil || node != "node-1" || r != (rfrb.Range{Start: 10, End: 20}) {
		t.Fatalf("round trip: %q %v %v", node, r, err)
	}
}

func TestClientCachesRanges(t *testing.T) {
	g := NewGenerator(nil)
	var rpcs int
	c := NewClient(func(ctx context.Context, n uint64) (rfrb.Range, error) {
		rpcs++
		return g.Allocate(ctx, "w1", n)
	})
	seen := make(map[uint64]bool)
	for i := 0; i < DefaultRangeSize*2; i++ {
		k, err := c.NextKey(ctxb())
		if err != nil {
			t.Fatal(err)
		}
		if seen[k] {
			t.Fatalf("key %d handed out twice", k)
		}
		seen[k] = true
	}
	// 256 default + 512 doubled covers 512 keys in 2 RPCs.
	if rpcs != 2 {
		t.Fatalf("rpcs = %d, want 2", rpcs)
	}
	refills, keys := c.Stats()
	if refills != 2 || keys != DefaultRangeSize*2 {
		t.Fatalf("Stats = %d, %d", refills, keys)
	}
}

func TestClientAdaptiveGrowthAndShrink(t *testing.T) {
	g := NewGenerator(nil)
	var sizes []uint64
	c := NewClient(func(ctx context.Context, n uint64) (rfrb.Range, error) {
		sizes = append(sizes, n)
		return g.Allocate(ctx, "w1", n)
	})
	for i := 0; i < 4; i++ {
		if _, err := c.NextRange(ctxb(), DefaultRangeSize*8); err != nil {
			t.Fatal(err)
		}
	}
	if sizes[0] != DefaultRangeSize {
		t.Fatalf("first request = %d, want default", sizes[0])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[i-1]*2 && sizes[i] != MaxRangeSize {
			t.Fatalf("sizes %v not doubling", sizes)
		}
	}
	before := sizes[len(sizes)-1]
	c.Shrink()
	_, _ = c.NextRange(ctxb(), c.Remaining()+1)
	last := sizes[len(sizes)-1]
	if last != before { // shrink halved, next refill doubles back
		t.Fatalf("after Shrink, refill = %d, want %d", last, before)
	}
}

func TestClientNextRangeSpansRefills(t *testing.T) {
	g := NewGenerator(nil)
	c := NewClient(func(ctx context.Context, n uint64) (rfrb.Range, error) {
		return g.Allocate(ctx, "w1", n)
	})
	ranges, err := c.NextRange(ctxb(), DefaultRangeSize+10)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, r := range ranges {
		total += r.Len()
	}
	if total != DefaultRangeSize+10 {
		t.Fatalf("NextRange covered %d keys, want %d", total, DefaultRangeSize+10)
	}
	if _, err := c.NextRange(ctxb(), 0); err == nil {
		t.Fatal("zero-length request accepted")
	}
}

func TestClientPropagatesAllocError(t *testing.T) {
	sentinel := errors.New("coordinator down")
	c := NewClient(func(context.Context, uint64) (rfrb.Range, error) {
		return rfrb.Range{}, sentinel
	})
	if _, err := c.NextKey(ctxb()); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestConcurrentClientsNeverShareKeys(t *testing.T) {
	g := NewGenerator(nil)
	var mu sync.Mutex
	seen := make(map[uint64]string)
	var wg sync.WaitGroup
	for _, node := range []string{"w1", "w2", "w3", "w4"} {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			c := NewClient(func(ctx context.Context, n uint64) (rfrb.Range, error) {
				return g.Allocate(ctx, node, n)
			})
			for i := 0; i < 2000; i++ {
				k, err := c.NextKey(ctxb())
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if owner, dup := seen[k]; dup {
					mu.Unlock()
					t.Errorf("key %d handed to both %s and %s", k, owner, node)
					return
				}
				seen[k] = node
				mu.Unlock()
			}
		}(node)
	}
	wg.Wait()
	if len(seen) != 8000 {
		t.Fatalf("unique keys = %d, want 8000", len(seen))
	}
}

func TestPropertyUniquenessAcrossRandomAllocationSizes(t *testing.T) {
	f := func(sizes []uint16) bool {
		g := NewGenerator(nil)
		var prevEnd uint64
		for _, s := range sizes {
			n := uint64(s%100) + 1
			r, err := g.Allocate(ctxb(), "n", n)
			if err != nil {
				return false
			}
			if r.Start < prevEnd || r.Len() != n {
				return false
			}
			prevEnd = r.End
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
