// Package keygen implements the Object Key Generator of §3.2. The
// coordinator hands out monotonically increasing ranges of 64-bit object
// keys from the reserved range [2^63, 2^64); each node caches its range
// locally and consumes keys from it without further coordination. Every
// allocation is logged so that after a coordinator crash both the maximum
// allocated key and the active sets (ranges outstanding at secondary nodes)
// can be recovered, and so that the ranges of crashed writers can be
// garbage collected (§3.3, Table 1).
package keygen

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"cloudiq/internal/rfrb"
	"cloudiq/internal/wal"
)

// ErrExhausted is returned when the reserved key space is exhausted. With
// 2^63 keys this cannot happen in practice (the paper estimates 1.4 million
// years at 20 nodes × 10,000 keys/s), but the arithmetic is still guarded.
var ErrExhausted = errors.New("keygen: reserved key range exhausted")

// DefaultRangeSize is the initial number of keys requested per RPC.
const DefaultRangeSize = 256

// MaxRangeSize caps adaptive growth of the per-node range size.
const MaxRangeSize = 1 << 16

// Generator is the coordinator-side allocator. It is safe for concurrent use.
type Generator struct {
	log *wal.Log // may be nil (e.g. inside recovery replay)

	mu     sync.Mutex
	next   uint64
	active map[string]*rfrb.Bitmap // node -> outstanding (uncommitted) ranges
}

// NewGenerator returns a Generator starting at the base of the reserved
// range. log may be nil for tests; production engines pass the coordinator's
// transaction log so allocations survive crashes.
func NewGenerator(log *wal.Log) *Generator {
	return &Generator{
		log:    log,
		next:   rfrb.CloudKeyBase,
		active: make(map[string]*rfrb.Bitmap),
	}
}

// AllocPayload encodes a RecAlloc record.
func AllocPayload(node string, r rfrb.Range) []byte {
	buf := make([]byte, 2+len(node)+16)
	binary.LittleEndian.PutUint16(buf, uint16(len(node)))
	copy(buf[2:], node)
	binary.LittleEndian.PutUint64(buf[2+len(node):], r.Start)
	binary.LittleEndian.PutUint64(buf[10+len(node):], r.End)
	return buf
}

// ParseAllocPayload decodes a RecAlloc record.
func ParseAllocPayload(p []byte) (node string, r rfrb.Range, err error) {
	if len(p) < 2 {
		return "", rfrb.Range{}, fmt.Errorf("keygen: short alloc payload")
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p) != 2+n+16 {
		return "", rfrb.Range{}, fmt.Errorf("keygen: alloc payload length %d for node length %d", len(p), n)
	}
	node = string(p[2 : 2+n])
	r.Start = binary.LittleEndian.Uint64(p[2+n:])
	r.End = binary.LittleEndian.Uint64(p[10+n:])
	return node, r, nil
}

// Allocate hands out the next n keys to node, durably logging the event
// before returning (the paper runs this inside a coordinator transaction:
// the largest allocated key is recorded in the transaction log and the
// active-set structure is updated before the range is returned).
func (g *Generator) Allocate(ctx context.Context, node string, n uint64) (rfrb.Range, error) {
	if n == 0 {
		return rfrb.Range{}, fmt.Errorf("keygen: zero-length allocation")
	}
	g.mu.Lock()
	if g.next+n < g.next { // overflow of the uint64 space
		g.mu.Unlock()
		return rfrb.Range{}, ErrExhausted
	}
	r := rfrb.Range{Start: g.next, End: g.next + n}
	g.next = r.End
	g.activeFor(node).AddRange(r)
	g.mu.Unlock()

	if g.log != nil {
		if _, err := g.log.Append(ctx, wal.RecAlloc, AllocPayload(node, r)); err != nil {
			// The allocation is already reflected in memory; the keys are
			// simply burned (never handed out again), which is safe under
			// the never-reuse invariant.
			return rfrb.Range{}, fmt.Errorf("keygen: log allocation: %w", err)
		}
	}
	return r, nil
}

func (g *Generator) activeFor(node string) *rfrb.Bitmap {
	b, ok := g.active[node]
	if !ok {
		b = &rfrb.Bitmap{}
		g.active[node] = b
	}
	return b
}

// OnCommit removes the cloud-key ranges consumed by a committed transaction
// from the node's active set: committed keys no longer need tracking because
// their pages are reachable from the blockmap and will be garbage collected
// through the normal RF/RB path. Rollbacks deliberately do NOT call this —
// the paper avoids that coordinator round trip and instead re-polls the
// ranges if the writer later restarts (Table 1, clock 130).
func (g *Generator) OnCommit(node string, consumed *rfrb.Bitmap) {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.active[node]
	if !ok {
		return
	}
	for _, r := range consumed.CloudRanges() {
		b.Remove(r.Start, r.End)
	}
	if b.Empty() {
		delete(g.active, node)
	}
}

// ActiveSet returns the outstanding ranges for node (empty if none).
func (g *Generator) ActiveSet(node string) []rfrb.Range {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.active[node]
	if !ok {
		return nil
	}
	return b.Ranges()
}

// Nodes returns the nodes that currently have outstanding ranges.
func (g *Generator) Nodes() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	nodes := make([]string, 0, len(g.active))
	for n := range g.active {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// ReleaseNode atomically returns and clears the outstanding ranges for node.
// The caller (the coordinator's restart-GC path) polls every key in the
// returned ranges against the object store and deletes what exists.
func (g *Generator) ReleaseNode(node string) []rfrb.Range {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.active[node]
	if !ok {
		return nil
	}
	delete(g.active, node)
	return b.Ranges()
}

// MaxAllocated returns the exclusive upper bound of all allocations so far
// (the next key that would be handed out).
func (g *Generator) MaxAllocated() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.next
}

// --- checkpoint / recovery ---

// CheckpointPayload serializes the generator state (max key + active sets)
// for inclusion in a checkpoint record.
func (g *Generator) CheckpointPayload() []byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	buf := binary.LittleEndian.AppendUint64(nil, g.next)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(g.active)))
	// Serialize in sorted node order: checkpoint bytes must be a pure
	// function of the generator state, not of map iteration order, or two
	// identically seeded runs produce different checkpoint images.
	nodes := make([]string, 0, len(g.active))
	for node := range g.active {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(node)))
		buf = append(buf, node...)
		img := g.active[node].Marshal()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(img)))
		buf = append(buf, img...)
	}
	return buf
}

// RestoreCheckpoint resets the generator state from CheckpointPayload output.
func (g *Generator) RestoreCheckpoint(payload []byte) error {
	if len(payload) < 12 {
		return fmt.Errorf("keygen: short checkpoint payload")
	}
	next := binary.LittleEndian.Uint64(payload)
	n := binary.LittleEndian.Uint32(payload[8:])
	off := 12
	active := make(map[string]*rfrb.Bitmap, n)
	for i := uint32(0); i < n; i++ {
		if off+2 > len(payload) {
			return fmt.Errorf("keygen: truncated checkpoint payload")
		}
		nl := int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if off+nl+4 > len(payload) {
			return fmt.Errorf("keygen: truncated checkpoint payload")
		}
		node := string(payload[off : off+nl])
		off += nl
		il := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if off+il > len(payload) {
			return fmt.Errorf("keygen: truncated checkpoint payload")
		}
		b, err := rfrb.Unmarshal(payload[off : off+il])
		if err != nil {
			return fmt.Errorf("keygen: checkpoint active set for %s: %w", node, err)
		}
		off += il
		if !b.Empty() {
			active[node] = b
		}
	}
	g.mu.Lock()
	g.next = next
	g.active = active
	g.mu.Unlock()
	return nil
}

// ApplyAlloc replays a RecAlloc record during crash recovery: the active set
// is reconstructed and the maximum key advanced (Table 1, steps 2–3).
func (g *Generator) ApplyAlloc(node string, r rfrb.Range) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.activeFor(node).AddRange(r)
	if r.End > g.next {
		g.next = r.End
	}
}
