package rfrb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAndContains(t *testing.T) {
	var b Bitmap
	b.Add(10, 20)
	b.AddKey(5)
	for _, v := range []uint64{5, 10, 15, 19} {
		if !b.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	for _, v := range []uint64{4, 6, 9, 20, 100} {
		if b.Contains(v) {
			t.Fatalf("Contains(%d) = true", v)
		}
	}
	if got := b.Count(); got != 11 {
		t.Fatalf("Count = %d, want 11", got)
	}
}

func TestCoalescing(t *testing.T) {
	var b Bitmap
	b.Add(10, 20)
	b.Add(20, 30) // adjacent: must merge
	if got := len(b.Ranges()); got != 1 {
		t.Fatalf("ranges = %v, want one merged range", b.Ranges())
	}
	b.Add(5, 15) // overlapping from the left
	r := b.Ranges()
	if len(r) != 1 || r[0] != (Range{5, 30}) {
		t.Fatalf("ranges = %v, want [{5 30}]", r)
	}
	b.Add(40, 50)
	b.Add(28, 45) // bridges the gap
	r = b.Ranges()
	if len(r) != 1 || r[0] != (Range{5, 50}) {
		t.Fatalf("ranges = %v, want [{5 50}]", r)
	}
}

func TestAddEmptyRangeIgnored(t *testing.T) {
	var b Bitmap
	b.Add(10, 10)
	b.Add(10, 5)
	if !b.Empty() {
		t.Fatalf("empty adds produced %v", b.Ranges())
	}
}

func TestRemove(t *testing.T) {
	var b Bitmap
	b.Add(10, 30)
	b.Remove(15, 20) // punch a hole
	r := b.Ranges()
	if len(r) != 2 || r[0] != (Range{10, 15}) || r[1] != (Range{20, 30}) {
		t.Fatalf("ranges = %v", r)
	}
	b.Remove(0, 100)
	if !b.Empty() {
		t.Fatalf("Remove(all) left %v", b.Ranges())
	}
	b.Remove(1, 2) // removing from empty is a no-op
}

func TestCloudAndBlockSplit(t *testing.T) {
	var b Bitmap
	b.Add(100, 200)                         // block run
	b.Add(CloudKeyBase+10, CloudKeyBase+20) // cloud keys
	b.Add(CloudKeyBase-5, CloudKeyBase+5)   // straddles the boundary
	if got := len(b.CloudRanges()); got != 2 {
		t.Fatalf("CloudRanges = %v", b.CloudRanges())
	}
	for _, r := range b.CloudRanges() {
		if r.Start < CloudKeyBase {
			t.Fatalf("cloud range %v starts below the base", r)
		}
	}
	for _, r := range b.BlockRanges() {
		if r.End > CloudKeyBase {
			t.Fatalf("block range %v ends above the base", r)
		}
	}
	var total uint64
	for _, r := range append(b.CloudRanges(), b.BlockRanges()...) {
		total += r.Len()
	}
	if total != b.Count() {
		t.Fatalf("split ranges cover %d values, bitmap has %d", total, b.Count())
	}
}

func TestIsCloudKey(t *testing.T) {
	if IsCloudKey(CloudKeyBase - 1) {
		t.Fatal("below base classified as cloud")
	}
	if !IsCloudKey(CloudKeyBase) {
		t.Fatal("base not classified as cloud")
	}
	if !IsCloudKey(^uint64(0)) {
		t.Fatal("max key not classified as cloud")
	}
}

func TestUnionAndClone(t *testing.T) {
	var a, b Bitmap
	a.Add(1, 5)
	b.Add(3, 10)
	b.Add(20, 25)
	c := a.Clone()
	a.Union(&b)
	if got := a.Count(); got != 9+5 {
		t.Fatalf("union count = %d, want 14", got)
	}
	if got := c.Count(); got != 4 {
		t.Fatalf("clone mutated by union: count = %d, want 4", got)
	}
	a.Clear()
	if !a.Empty() {
		t.Fatal("Clear left elements")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	var b Bitmap
	b.Add(1, 5)
	b.Add(100, 130)
	b.Add(CloudKeyBase+1000, CloudKeyBase+2000)
	got, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != b.String() {
		t.Fatalf("round trip: got %s, want %s", got, &b)
	}
	empty, err := Unmarshal((&Bitmap{}).Marshal())
	if err != nil || !empty.Empty() {
		t.Fatalf("empty round trip: %v, %v", empty, err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte{1}); err == nil {
		t.Fatal("short buffer accepted")
	}
	var b Bitmap
	b.Add(10, 20)
	img := b.Marshal()
	if _, err := Unmarshal(img[:12]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	// Swap start/end to make an invalid range.
	copy(img[8:16], []byte{20, 0, 0, 0, 0, 0, 0, 0})
	copy(img[16:24], []byte{10, 0, 0, 0, 0, 0, 0, 0})
	if _, err := Unmarshal(img); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestString(t *testing.T) {
	var b Bitmap
	b.AddKey(7)
	b.Add(10, 13)
	if got, want := b.String(), "{7 10-12}"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestPropertyMatchesReferenceSet(t *testing.T) {
	// Compare against a plain map-based set under a random operation mix.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		var b Bitmap
		ref := make(map[uint64]bool)
		for op := 0; op < 200; op++ {
			start := uint64(rnd.Intn(500))
			n := uint64(rnd.Intn(20))
			if rnd.Intn(3) == 0 {
				b.Remove(start, start+n)
				for v := start; v < start+n; v++ {
					delete(ref, v)
				}
			} else {
				b.Add(start, start+n)
				for v := start; v < start+n; v++ {
					ref[v] = true
				}
			}
		}
		if b.Count() != uint64(len(ref)) {
			return false
		}
		for v := uint64(0); v < 520; v++ {
			if b.Contains(v) != ref[v] {
				return false
			}
		}
		// Ranges must be sorted, non-empty, non-adjacent.
		rs := b.Ranges()
		for i, r := range rs {
			if r.Start >= r.End {
				return false
			}
			if i > 0 && rs[i-1].End >= r.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMarshalRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		var b Bitmap
		for _, v := range vals {
			b.Add(v, v+uint64(v%7)+1)
		}
		got, err := Unmarshal(b.Marshal())
		return err == nil && got.String() == b.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
