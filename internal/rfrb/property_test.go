package rfrb

import (
	"flag"
	"testing"

	"cloudiq/internal/mt"
)

var propSeed = flag.Uint64("prop-seed", 20260806, "base seed for property tests (reproduces a failing case)")

// genBitmap builds a bitmap from random add/remove operations spanning the
// block-key and cloud-key halves of the space, so merging, splitting and
// the CloudKeyBase boundary are all exercised.
func genBitmap(r *mt.Source) *Bitmap {
	b := &Bitmap{}
	ops := int(r.Uint64() % 60)
	for i := 0; i < ops; i++ {
		var base uint64
		if r.Uint64()%2 == 0 {
			base = CloudKeyBase - 64 // straddle the cloud boundary
		}
		start := base + r.Uint64()%4096
		length := r.Uint64()%128 + 1
		if r.Uint64()%5 == 0 {
			b.Remove(start, start+length)
		} else {
			b.Add(start, start+length)
		}
	}
	return b
}

// TestBitmapMarshalRoundTripProperty checks Marshal/Unmarshal over random
// bitmaps: the restored set must be element-identical and re-marshal to the
// same bytes. Failures report the reproducing seed.
func TestBitmapMarshalRoundTripProperty(t *testing.T) {
	r := mt.New(*propSeed)
	for iter := 0; iter < 300; iter++ {
		b := genBitmap(r)
		data := b.Marshal()
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("seed %d iter %d: unmarshal %s: %v (rerun with -prop-seed=%d)",
				*propSeed, iter, b, err, *propSeed)
		}
		if got.Count() != b.Count() {
			t.Fatalf("seed %d iter %d: count %d, want %d (rerun with -prop-seed=%d)",
				*propSeed, iter, got.Count(), b.Count(), *propSeed)
		}
		wr, gr := b.Ranges(), got.Ranges()
		if len(wr) != len(gr) {
			t.Fatalf("seed %d iter %d: %d ranges, want %d (rerun with -prop-seed=%d)",
				*propSeed, iter, len(gr), len(wr), *propSeed)
		}
		for i := range wr {
			if wr[i] != gr[i] {
				t.Fatalf("seed %d iter %d: range %d = %v, want %v (rerun with -prop-seed=%d)",
					*propSeed, iter, i, gr[i], wr[i], *propSeed)
			}
		}
		redata := got.Marshal()
		if string(redata) != string(data) {
			t.Fatalf("seed %d iter %d: re-marshal differs from original image (rerun with -prop-seed=%d)",
				*propSeed, iter, *propSeed)
		}
		// Cloud/block partition must survive the trip — restart GC and
		// commit notifications depend on it.
		if len(got.CloudRanges()) != len(b.CloudRanges()) || len(got.BlockRanges()) != len(b.BlockRanges()) {
			t.Fatalf("seed %d iter %d: cloud/block partition changed across round-trip (rerun with -prop-seed=%d)",
				*propSeed, iter, *propSeed)
		}
	}
}

// TestBitmapUnmarshalRejectsCorrupt flips one byte at every offset of a
// marshaled image; Unmarshal must either reject it or return a structurally
// valid bitmap (sorted, disjoint, non-empty ranges) — never panic or
// produce overlapping ranges.
func TestBitmapUnmarshalRejectsCorrupt(t *testing.T) {
	b := &Bitmap{}
	b.Add(10, 20)
	b.Add(100, 130)
	b.Add(CloudKeyBase, CloudKeyBase+5)
	img := b.Marshal()
	for off := 0; off < len(img); off++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), img...)
			mut[off] ^= flip
			got, err := Unmarshal(mut)
			if err != nil {
				continue
			}
			prev := uint64(0)
			for i, r := range got.Ranges() {
				if r.Start >= r.End || (i > 0 && r.Start < prev) {
					t.Fatalf("offset %d flip %#x: accepted structurally invalid bitmap %s", off, flip, got)
				}
				prev = r.End
			}
		}
	}
}
