// Package rfrb implements the roll-forward/roll-back (RF/RB) bitmaps of
// §3.3. Each transaction owns a pair: the RB bitmap records pages the
// transaction allocated, the RF bitmap records pages it marked for deletion.
// One data structure records both representations the paper describes —
// ranges of physical block numbers (below 2^48) and cloud object keys (in
// [2^63, 2^64)) — distinguished purely by the numeric range a bit falls in.
// Because the key generator hands out monotonically increasing ranges, cloud
// entries compress to intervals, the space/performance optimization §3.2
// calls out.
package rfrb

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// CloudKeyBase is the first value of the reserved cloud-key range
// [2^63, 2^64). Values below are physical block numbers.
const CloudKeyBase uint64 = 1 << 63

// IsCloudKey reports whether v falls in the reserved cloud-key range.
func IsCloudKey(v uint64) bool { return v >= CloudKeyBase }

// Range is a half-open interval [Start, End).
type Range struct {
	Start, End uint64
}

// Len returns the number of values in the range.
func (r Range) Len() uint64 { return r.End - r.Start }

// Bitmap is a sparse set of uint64 values stored as sorted, coalesced,
// non-overlapping ranges. The zero value is an empty bitmap. Bitmap is not
// safe for concurrent mutation; each transaction owns its own pair.
type Bitmap struct {
	ranges []Range
}

// Add inserts the half-open interval [start, end), merging with neighbours.
func (b *Bitmap) Add(start, end uint64) {
	if start >= end {
		return
	}
	i := sort.Search(len(b.ranges), func(i int) bool { return b.ranges[i].End >= start })
	j := i
	for j < len(b.ranges) && b.ranges[j].Start <= end {
		if b.ranges[j].Start < start {
			start = b.ranges[j].Start
		}
		if b.ranges[j].End > end {
			end = b.ranges[j].End
		}
		j++
	}
	merged := append(b.ranges[:i:i], Range{start, end})
	b.ranges = append(merged, b.ranges[j:]...)
}

// AddKey inserts a single value.
func (b *Bitmap) AddKey(v uint64) { b.Add(v, v+1) }

// AddRange inserts r.
func (b *Bitmap) AddRange(r Range) { b.Add(r.Start, r.End) }

// Contains reports whether v is in the set.
func (b *Bitmap) Contains(v uint64) bool {
	i := sort.Search(len(b.ranges), func(i int) bool { return b.ranges[i].End > v })
	return i < len(b.ranges) && b.ranges[i].Start <= v
}

// Remove deletes the half-open interval [start, end) from the set.
func (b *Bitmap) Remove(start, end uint64) {
	if start >= end || len(b.ranges) == 0 {
		return
	}
	var out []Range
	for _, r := range b.ranges {
		if r.End <= start || r.Start >= end {
			out = append(out, r)
			continue
		}
		if r.Start < start {
			out = append(out, Range{r.Start, start})
		}
		if r.End > end {
			out = append(out, Range{end, r.End})
		}
	}
	b.ranges = out
}

// Empty reports whether the set has no values.
func (b *Bitmap) Empty() bool { return len(b.ranges) == 0 }

// Count returns the number of values in the set.
func (b *Bitmap) Count() uint64 {
	var n uint64
	for _, r := range b.ranges {
		n += r.Len()
	}
	return n
}

// Ranges returns a copy of the underlying ranges in ascending order.
func (b *Bitmap) Ranges() []Range {
	out := make([]Range, len(b.ranges))
	copy(out, b.ranges)
	return out
}

// CloudRanges returns the portions of the set above CloudKeyBase — the
// object keys.
func (b *Bitmap) CloudRanges() []Range {
	var out []Range
	for _, r := range b.ranges {
		if r.End <= CloudKeyBase {
			continue
		}
		s := r.Start
		if s < CloudKeyBase {
			s = CloudKeyBase
		}
		out = append(out, Range{s, r.End})
	}
	return out
}

// BlockRanges returns the portions of the set below CloudKeyBase — the
// conventional block runs.
func (b *Bitmap) BlockRanges() []Range {
	var out []Range
	for _, r := range b.ranges {
		if r.Start >= CloudKeyBase {
			break
		}
		e := r.End
		if e > CloudKeyBase {
			e = CloudKeyBase
		}
		out = append(out, Range{r.Start, e})
	}
	return out
}

// Union adds every range of other into b.
func (b *Bitmap) Union(other *Bitmap) {
	for _, r := range other.ranges {
		b.Add(r.Start, r.End)
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{ranges: make([]Range, len(b.ranges))}
	copy(c.ranges, b.ranges)
	return c
}

// Clear empties the set.
func (b *Bitmap) Clear() { b.ranges = nil }

// Marshal serializes the bitmap: a count followed by (start, end) pairs.
func (b *Bitmap) Marshal() []byte {
	buf := make([]byte, 8+16*len(b.ranges))
	binary.LittleEndian.PutUint64(buf, uint64(len(b.ranges)))
	for i, r := range b.ranges {
		binary.LittleEndian.PutUint64(buf[8+16*i:], r.Start)
		binary.LittleEndian.PutUint64(buf[16+16*i:], r.End)
	}
	return buf
}

// Unmarshal restores a bitmap from Marshal output.
func Unmarshal(data []byte) (*Bitmap, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("rfrb: short buffer (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	// Divide instead of multiplying: 16*n overflows for corrupt counts.
	if n > (uint64(len(data))-8)/16 {
		return nil, fmt.Errorf("rfrb: truncated: %d ranges in %d bytes", n, len(data))
	}
	b := &Bitmap{ranges: make([]Range, n)}
	var prev uint64
	for i := uint64(0); i < n; i++ {
		start := binary.LittleEndian.Uint64(data[8+16*i:])
		end := binary.LittleEndian.Uint64(data[16+16*i:])
		if start >= end || (i > 0 && start <= prev) {
			return nil, fmt.Errorf("rfrb: corrupt range %d: [%d,%d) after %d", i, start, end, prev)
		}
		b.ranges[i] = Range{start, end}
		prev = end
	}
	return b, nil
}

// String renders the set for debugging.
func (b *Bitmap) String() string {
	s := "{"
	for i, r := range b.ranges {
		if i > 0 {
			s += " "
		}
		if r.Len() == 1 {
			s += fmt.Sprintf("%d", r.Start)
		} else {
			s += fmt.Sprintf("%d-%d", r.Start, r.End-1)
		}
	}
	return s + "}"
}
