// Package core implements the paper's primary contribution: the cloud-native
// page store. Logical database pages map directly to objects in object
// stores (or to contiguous block runs on conventional devices); dirty pages
// are never written twice to the same object key, which reduces eventual
// consistency to the read-after-write case handled by bounded retry; and the
// blockmap — a copy-on-write tree — records each page's current physical
// location, cascading versioning up to a root whose location is stored in an
// identity object on strongly consistent storage (§3, §3.1, Figure 2).
package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"cloudiq/internal/rfrb"
)

// EntrySize is the serialized size of an Entry in blockmap pages.
const EntrySize = 16

// Entry locates one physical page version: either an object key in
// [2^63, 2^64) with Blocks == 0, or a run of Blocks contiguous blocks
// starting at block number Loc. Size is the stored (possibly compressed)
// byte length. The paper overloads the 64-bit physical block number field
// the same way rather than adding a new field to the blockmap format.
type Entry struct {
	Loc    uint64 // object key or first block number
	Size   uint32 // stored bytes
	Blocks uint16 // block count; 0 for cloud entries
	Flags  uint16 // reserved (compression codec, etc.)
}

// IsZero reports whether the entry is unoccupied.
func (e Entry) IsZero() bool { return e == Entry{} }

// IsCloud reports whether the entry references an object-store key.
func (e Entry) IsCloud() bool { return rfrb.IsCloudKey(e.Loc) }

// Span returns the extent the entry occupies in the RF/RB bitmap domain:
// one value for a cloud key, Blocks values for a block run.
func (e Entry) Span() rfrb.Range {
	if e.IsCloud() {
		return rfrb.Range{Start: e.Loc, End: e.Loc + 1}
	}
	return rfrb.Range{Start: e.Loc, End: e.Loc + uint64(e.Blocks)}
}

// String renders the entry for logs.
func (e Entry) String() string {
	if e.IsZero() {
		return "<free>"
	}
	if e.IsCloud() {
		return fmt.Sprintf("obj(%#x, %dB)", e.Loc, e.Size)
	}
	return fmt.Sprintf("blk(%d+%d, %dB)", e.Loc, e.Blocks, e.Size)
}

func (e Entry) encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], e.Loc)
	binary.LittleEndian.PutUint32(buf[8:], e.Size)
	binary.LittleEndian.PutUint16(buf[12:], e.Blocks)
	binary.LittleEndian.PutUint16(buf[14:], e.Flags)
}

func decodeEntry(buf []byte) Entry {
	return Entry{
		Loc:    binary.LittleEndian.Uint64(buf[0:]),
		Size:   binary.LittleEndian.Uint32(buf[8:]),
		Blocks: binary.LittleEndian.Uint16(buf[12:]),
		Flags:  binary.LittleEndian.Uint16(buf[14:]),
	}
}

// MarshalEntry serializes an Entry for catalogs and identity objects.
func MarshalEntry(e Entry) []byte {
	buf := make([]byte, EntrySize)
	e.encode(buf)
	return buf
}

// UnmarshalEntry decodes MarshalEntry output.
func UnmarshalEntry(buf []byte) (Entry, error) {
	if len(buf) < EntrySize {
		return Entry{}, fmt.Errorf("core: entry buffer too short (%d bytes)", len(buf))
	}
	return decodeEntry(buf), nil
}

// FlushSink receives the allocation and deallocation events produced when
// pages are flushed or superseded. The transaction manager implements it
// with the transaction's RB (allocations) and RF (deallocations) bitmaps.
type FlushSink interface {
	// NoteAllocated records that the extent of e was newly allocated.
	NoteAllocated(e Entry)
	// NoteFreed records that the extent of e is superseded and should be
	// reclaimed when the owning transaction's version expires.
	NoteFreed(e Entry)
}

// NopSink discards flush events; useful for bootstrap writes that are
// reclaimed by other means.
type NopSink struct{}

// NoteAllocated implements FlushSink.
func (NopSink) NoteAllocated(Entry) {}

// NoteFreed implements FlushSink.
func (NopSink) NoteFreed(Entry) {}

// BitmapSink adapts a pair of RF/RB bitmaps to FlushSink. It is not safe
// for concurrent use; wrap it with LockedSink when flushes run in parallel.
type BitmapSink struct {
	RB *rfrb.Bitmap // allocations
	RF *rfrb.Bitmap // deallocations
}

// LockedSink serializes a FlushSink for use by concurrent flushers.
func LockedSink(s FlushSink) FlushSink {
	return &lockedSink{inner: s}
}

type lockedSink struct {
	mu    sync.Mutex
	inner FlushSink
}

// NoteAllocated implements FlushSink.
func (l *lockedSink) NoteAllocated(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.NoteAllocated(e)
}

// NoteFreed implements FlushSink.
func (l *lockedSink) NoteFreed(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.NoteFreed(e)
}

// NoteAllocated implements FlushSink.
func (s BitmapSink) NoteAllocated(e Entry) {
	if s.RB != nil {
		s.RB.AddRange(e.Span())
	}
}

// NoteFreed implements FlushSink.
func (s BitmapSink) NoteFreed(e Entry) {
	if s.RF != nil {
		s.RF.AddRange(e.Span())
	}
}
