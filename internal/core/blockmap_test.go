package core

import (
	"context"
	"testing"
	"testing/quick"

	"cloudiq/internal/objstore"
	"cloudiq/internal/rfrb"
)

func newCloudForBM(t *testing.T) (*CloudDbspace, *objstore.MemStore) {
	t.Helper()
	store := objstore.NewMem(objstore.Config{})
	return newCloudSpace(t, store), store
}

func TestBlockmapSetGet(t *testing.T) {
	ds, _ := newCloudForBM(t)
	bm, err := NewBlockmap(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := Entry{Loc: rfrb.CloudKeyBase + 1, Size: 10}
	old, err := bm.Set(ctxb(), 0, e)
	if err != nil || !old.IsZero() {
		t.Fatalf("Set = %v, %v", old, err)
	}
	got, err := bm.Get(ctxb(), 0)
	if err != nil || got != e {
		t.Fatalf("Get = %v, %v", got, err)
	}
	// Unmapped pages return the zero entry.
	got, err = bm.Get(ctxb(), 3)
	if err != nil || !got.IsZero() {
		t.Fatalf("Get(unmapped) = %v, %v", got, err)
	}
	got, err = bm.Get(ctxb(), 1<<40)
	if err != nil || !got.IsZero() {
		t.Fatalf("Get(beyond capacity) = %v, %v", got, err)
	}
}

func TestBlockmapSetReturnsReplacedEntry(t *testing.T) {
	ds, _ := newCloudForBM(t)
	bm, _ := NewBlockmap(ds, 4)
	e1 := Entry{Loc: rfrb.CloudKeyBase + 1, Size: 1}
	e2 := Entry{Loc: rfrb.CloudKeyBase + 2, Size: 2}
	_, _ = bm.Set(ctxb(), 7, e1)
	old, err := bm.Set(ctxb(), 7, e2)
	if err != nil || old != e1 {
		t.Fatalf("replaced = %v, %v; want %v", old, err, e1)
	}
	old, err = bm.Delete(ctxb(), 7)
	if err != nil || old != e2 {
		t.Fatalf("Delete = %v, %v; want %v", old, err, e2)
	}
}

func TestBlockmapGrowsAcrossLevels(t *testing.T) {
	ds, _ := newCloudForBM(t)
	bm, _ := NewBlockmap(ds, 2) // tiny fanout exercises depth
	for i := uint64(0); i < 40; i++ {
		e := Entry{Loc: rfrb.CloudKeyBase + 100 + i, Size: uint32(i)}
		if _, err := bm.Set(ctxb(), i, e); err != nil {
			t.Fatal(err)
		}
	}
	if got := bm.Pages(); got != 40 {
		t.Fatalf("Pages = %d, want 40", got)
	}
	for i := uint64(0); i < 40; i++ {
		got, err := bm.Get(ctxb(), i)
		if err != nil || got.Loc != rfrb.CloudKeyBase+100+i {
			t.Fatalf("Get(%d) = %v, %v", i, got, err)
		}
	}
}

func TestBlockmapFlushAndReopen(t *testing.T) {
	ds, store := newCloudForBM(t)
	bm, _ := NewBlockmap(ds, 4)
	for i := uint64(0); i < 30; i++ {
		if _, err := bm.Set(ctxb(), i, Entry{Loc: rfrb.CloudKeyBase + 1000 + i, Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	var rb, rf rfrb.Bitmap
	id, err := bm.Flush(ctxb(), BitmapSink{RB: &rb, RF: &rf})
	if err != nil {
		t.Fatal(err)
	}
	if id.Root.IsZero() || id.Pages != 30 {
		t.Fatalf("identity = %+v", id)
	}
	if !rf.Empty() {
		t.Fatalf("first flush freed %v", &rf)
	}
	if rb.Empty() {
		t.Fatal("first flush recorded no allocations")
	}
	objectsAfterFlush := store.Len()

	// Reopen from the identity and verify every mapping, reading blockmap
	// pages back from the object store.
	bm2, err := OpenBlockmap(ds, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30; i++ {
		got, err := bm2.Get(ctxb(), i)
		if err != nil || got.Loc != rfrb.CloudKeyBase+1000+i {
			t.Fatalf("reopened Get(%d) = %v, %v", i, got, err)
		}
	}
	if store.Len() != objectsAfterFlush {
		t.Fatal("reads created objects")
	}
}

func TestBlockmapFlushCascadeVersionsPathToRoot(t *testing.T) {
	// Figure 2: dirtying one data page and flushing must version the leaf
	// and every ancestor up to the root — and never rewrite any object key.
	ds, _ := newCloudForBM(t)
	bm, _ := NewBlockmap(ds, 2)
	for i := uint64(0); i < 8; i++ {
		_, _ = bm.Set(ctxb(), i, Entry{Loc: rfrb.CloudKeyBase + 500 + i, Size: 1})
	}
	var rb0 rfrb.Bitmap
	id0, err := bm.Flush(ctxb(), BitmapSink{RB: &rb0})
	if err != nil {
		t.Fatal(err)
	}

	// Dirty exactly one page (like H -> H').
	if _, err := bm.Set(ctxb(), 7, Entry{Loc: rfrb.CloudKeyBase + 999, Size: 1}); err != nil {
		t.Fatal(err)
	}
	var rb, rf rfrb.Bitmap
	id1, err := bm.Flush(ctxb(), BitmapSink{RB: &rb, RF: &rf})
	if err != nil {
		t.Fatal(err)
	}
	if id1.Root == id0.Root {
		t.Fatal("root was not versioned by the cascade")
	}
	// With fanout 2 and 8 leaves, the tree has 3 levels of blockmap pages
	// above the data: leaf + 2 inner = path of 3 (one per level) rewritten.
	if got := rb.Count(); got != uint64(id1.Levels)+1 {
		t.Fatalf("flush allocated %d blockmap pages, want %d (path to root)", got, id1.Levels+1)
	}
	if got := rf.Count(); got != uint64(id1.Levels)+1 {
		t.Fatalf("flush freed %d superseded pages, want %d", got, id1.Levels+1)
	}
	// The freed extents are exactly a subset of the previous allocation.
	for _, r := range rf.Ranges() {
		for k := r.Start; k < r.End; k++ {
			if !rb0.Contains(k) {
				t.Fatalf("freed key %#x was not allocated by the previous flush", k)
			}
		}
	}
}

func TestBlockmapCleanFlushIsNoop(t *testing.T) {
	ds, store := newCloudForBM(t)
	bm, _ := NewBlockmap(ds, 4)
	_, _ = bm.Set(ctxb(), 0, Entry{Loc: rfrb.CloudKeyBase + 1, Size: 1})
	id1, err := bm.Flush(ctxb(), NopSink{})
	if err != nil {
		t.Fatal(err)
	}
	n := store.Len()
	id2, err := bm.Flush(ctxb(), NopSink{})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1 || store.Len() != n {
		t.Fatalf("clean flush rewrote pages: %+v -> %+v", id1, id2)
	}
	if bm.Dirty() {
		t.Fatal("blockmap dirty after flush")
	}
}

func TestBlockmapForEach(t *testing.T) {
	ds, _ := newCloudForBM(t)
	bm, _ := NewBlockmap(ds, 3)
	want := map[uint64]uint64{}
	for _, i := range []uint64{0, 2, 9, 26, 5} {
		loc := rfrb.CloudKeyBase + 100 + i
		_, _ = bm.Set(ctxb(), i, Entry{Loc: loc, Size: 1})
		want[i] = loc
	}
	// Round trip through storage to exercise lazy loading during the walk.
	id, err := bm.Flush(ctxb(), NopSink{})
	if err != nil {
		t.Fatal(err)
	}
	bm2, _ := OpenBlockmap(ds, id)
	got := map[uint64]uint64{}
	var lastLogical uint64
	first := true
	err = bm2.ForEach(ctxb(), func(logical uint64, e Entry) error {
		if !first && logical <= lastLogical {
			t.Fatalf("ForEach out of order: %d after %d", logical, lastLogical)
		}
		first, lastLogical = false, logical
		got[logical] = e.Loc
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %d = %#x, want %#x", k, got[k], v)
		}
	}
}

func TestBlockmapIdentityRoundTrip(t *testing.T) {
	id := Identity{
		Root:   Entry{Loc: rfrb.CloudKeyBase + 42, Size: 100},
		Pages:  77,
		Fanout: 256,
		Levels: 3,
	}
	got, err := UnmarshalIdentity(MarshalIdentity(id))
	if err != nil || got != id {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	if _, err := UnmarshalIdentity([]byte{1}); err == nil {
		t.Fatal("short identity accepted")
	}
}

func TestBlockmapRejectsBadFanout(t *testing.T) {
	ds, _ := newCloudForBM(t)
	if _, err := NewBlockmap(ds, 1); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	if _, err := OpenBlockmap(ds, Identity{Fanout: 0}); err == nil {
		t.Fatal("identity with fanout 0 accepted")
	}
}

func TestBlockmapOnBlockDbspace(t *testing.T) {
	// Blockmaps also work on conventional dbspaces (the on-premise model).
	ds := newBlockSpace(t)
	bm, _ := NewBlockmap(ds, 4)
	for i := uint64(0); i < 10; i++ {
		if _, err := bm.Set(ctxb(), i, Entry{Loc: 100 + i, Blocks: 1, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	id, err := bm.Flush(ctxb(), NopSink{})
	if err != nil {
		t.Fatal(err)
	}
	bm2, _ := OpenBlockmap(ds, id)
	got, err := bm2.Get(ctxb(), 9)
	if err != nil || got.Loc != 109 {
		t.Fatalf("Get = %v, %v", got, err)
	}
}

func TestPropertyBlockmapMatchesMap(t *testing.T) {
	// Random Set/Delete/Flush/Reopen sequences must agree with a plain map.
	f := func(ops []uint16, fanoutSel uint8) bool {
		ds := newCloudSpace(nil, objstore.NewMem(objstore.Config{}))
		fanout := int(fanoutSel%6) + 2
		bm, err := NewBlockmap(ds, fanout)
		if err != nil {
			return false
		}
		ref := map[uint64]Entry{}
		ctx := context.Background()
		for i, op := range ops {
			logical := uint64(op % 300)
			switch op % 5 {
			case 0: // delete
				old, err := bm.Delete(ctx, logical)
				if err != nil || old != ref[logical] {
					return false
				}
				delete(ref, logical)
			case 4: // flush + reopen
				id, err := bm.Flush(ctx, NopSink{})
				if err != nil {
					return false
				}
				if bm, err = OpenBlockmap(ds, id); err != nil {
					return false
				}
			default: // set
				e := Entry{Loc: rfrb.CloudKeyBase + uint64(i) + 1, Size: uint32(i)}
				old, err := bm.Set(ctx, logical, e)
				if err != nil || old != ref[logical] {
					return false
				}
				ref[logical] = e
			}
		}
		for logical, want := range ref {
			got, err := bm.Get(ctx, logical)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
