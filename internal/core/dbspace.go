package core

import (
	"context"
	"fmt"
	"time"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/freelist"
	"cloudiq/internal/iomodel"
	"cloudiq/internal/keygen"
	"cloudiq/internal/mt"
	"cloudiq/internal/objstore"
	"cloudiq/internal/pageio"
	"cloudiq/internal/rfrb"
)

// ErrRetriesExhausted is returned when a cloud page cannot be read or
// written within the configured retry budget. The caller (the buffer
// manager, on behalf of a transaction) responds by rolling the transaction
// back (§4). It is the pageio pipeline's exhaustion sentinel: the retry
// policy itself lives in pageio.Retry.
var ErrRetriesExhausted = pageio.ErrExhausted

// WriteMode selects how a page flush interacts with the Object Cache
// Manager (§4). During the churn phase evictions use WriteBack to keep
// latency at local-SSD levels; during the commit phase the buffer manager
// switches to WriteThrough so pages reach permanent storage synchronously.
type WriteMode int

const (
	// WriteThrough writes synchronously to permanent storage.
	WriteThrough WriteMode = iota
	// WriteBack writes synchronously to the local cache (when present) and
	// asynchronously to permanent storage; durability is established later
	// by FlushForCommit.
	WriteBack
)

// Dbspace is the storage unit databases are built from: a collection of
// pages on either an object store (cloud dbspace) or a block device
// (conventional dbspace). All implementations route their I/O through an
// internal pageio pipeline, so retries, fault injection, metering and
// batching are uniform across backends.
type Dbspace interface {
	// Name returns the dbspace name.
	Name() string
	// IsCloud reports whether pages live on an object store.
	IsCloud() bool
	// WritePage stores data at a freshly allocated location — an object key
	// never used before, or a newly allocated block run — and returns its
	// entry. Cloud dbspaces never overwrite an existing key.
	WritePage(ctx context.Context, data []byte, mode WriteMode) (Entry, error)
	// WriteBatch stores each page at a freshly allocated location. The
	// returned entries are positional; a failed item leaves a zero Entry and
	// the error expands per item via pageio.ItemErrors. Successful items are
	// as durable as a WritePage in the same mode.
	WriteBatch(ctx context.Context, pages [][]byte, mode WriteMode) ([]Entry, error)
	// ReadPage fetches the stored bytes for e, retrying object-not-found
	// errors caused by eventual consistency up to the configured budget.
	ReadPage(ctx context.Context, e Entry) ([]byte, error)
	// ReadBatch fetches one page per entry. Results are positional (nil for
	// failed items) and the error expands per item via pageio.ItemErrors.
	ReadBatch(ctx context.Context, entries []Entry) ([][]byte, error)
	// FlushForCommit blocks until every WriteBack page in the given extents
	// is durable on permanent storage, prioritizing their uploads. It is a
	// no-op for conventional dbspaces (their writes are already durable).
	FlushForCommit(ctx context.Context, extents []rfrb.Range) error
	// Reclaim physically deletes the extent covered by r: object keys are
	// deleted (idempotently — unconsumed keys in the range are simply
	// polled, per Table 1), block runs are released to the freelist.
	Reclaim(ctx context.Context, r rfrb.Range) error
}

// PageCache is the slice of the Object Cache Manager a cloud dbspace uses.
// *ocm.Cache implements it.
type PageCache interface {
	pageio.CacheLayer
	FlushForCommit(ctx context.Context, keys []string) error
}

// KeyNamer maps a 64-bit object key to the full key used on the object
// store. The default prepends a randomized prefix derived from a Mersenne
// Twister hash of the key (§3.1); Sequential mode disables the hash and is
// used by the prefix-throttling ablation bench.
type KeyNamer struct {
	Sequential bool
}

// Name renders the store key for key.
func (n KeyNamer) Name(key uint64) string {
	if n.Sequential {
		return fmt.Sprintf("seq/%016x", key)
	}
	return fmt.Sprintf("%04x/%016x", mt.Hash64(key)>>48, key)
}

// CloudConfig parameterizes a cloud dbspace.
type CloudConfig struct {
	Name  string
	Store objstore.Store
	Keys  *keygen.Client
	Namer KeyNamer

	// Cache, when non-nil, is the Object Cache Manager all page I/O is
	// routed through.
	Cache PageCache

	// ReadRetries bounds retry-until-found for eventually consistent reads;
	// WriteRetries bounds retries of failed uploads before the transaction
	// is rolled back. Zero values select defaults. With a Cache configured
	// the cache owns upload retries, so the pipeline writes once.
	ReadRetries  int
	WriteRetries int
	// RetryDelay is the first simulated backoff between attempts; it doubles
	// per retry, capped at 8x.
	RetryDelay time.Duration
	// Scale drives the backoff sleeps. Nil disables sleeping.
	Scale *iomodel.Scale

	// Pool bounds batch fan-out. Nil runs batches sequentially.
	Pool *pageio.WorkPool
	// Stats, when non-nil, receives per-layer I/O metrics under
	// "dbspace:<name>" (above the retry stage) and "store:<name>" or
	// "ocm:<name>" (below it).
	Stats *pageio.StatsRegistry
}

const (
	defaultReadRetries  = 10
	defaultWriteRetries = 3
	retryCapFactor      = 8
)

// CloudDbspace stores each page as one object under a never-reused key.
type CloudDbspace struct {
	cfg  CloudConfig
	pipe pageio.Handler
	// selPipe is the pushdown pipeline: it terminates directly at the store
	// adapter, bypassing the OCM — select results are derived data and must
	// never enter the page cache — while keeping the same tracing, metering
	// and read-retry stages as the page pipeline.
	selPipe pageio.Handler
}

var _ Dbspace = (*CloudDbspace)(nil)

// NewCloud returns a cloud dbspace over cfg.Store drawing keys from cfg.Keys.
// Its pipeline is
//
//	Meter("dbspace:<name>") -> Retry -> Meter("ocm:|store:<name>") -> terminal
//
// where the terminal is the OCM (when configured) or the store adapter.
func NewCloud(cfg CloudConfig) *CloudDbspace {
	if cfg.ReadRetries <= 0 {
		cfg.ReadRetries = defaultReadRetries
	}
	if cfg.WriteRetries <= 0 {
		cfg.WriteRetries = defaultWriteRetries
	}
	var terminal pageio.Handler
	var innerTrace, innerMeter pageio.Middleware
	writeAttempts := cfg.WriteRetries
	if cfg.Cache != nil {
		terminal = pageio.NewCache(cfg.Cache)
		innerTrace = pageio.Trace("ocm:" + cfg.Name)
		innerMeter = pageio.Meter(cfg.Stats, "ocm:"+cfg.Name)
		// The OCM's write paths carry their own upload retry budget.
		writeAttempts = 1
	} else {
		terminal = pageio.NewStore(cfg.Store, nil)
		innerTrace = pageio.Trace("store:" + cfg.Name)
		innerMeter = pageio.Meter(cfg.Stats, "store:"+cfg.Name)
	}
	// Trace sits outermost so its span times the caller-visible operation
	// (including backoff); Retry annotates that span with attempt counts.
	pipe := pageio.Chain(terminal,
		pageio.Trace("dbspace:"+cfg.Name),
		pageio.Meter(cfg.Stats, "dbspace:"+cfg.Name),
		pageio.Retry(pageio.Policy{
			ReadAttempts:  cfg.ReadRetries,
			WriteAttempts: writeAttempts,
			Delay:         cfg.RetryDelay,
			Cap:           retryCapFactor * cfg.RetryDelay,
			Scale:         cfg.Scale,
			Pool:          cfg.Pool,
		}),
		innerTrace,
		innerMeter,
	)
	selPipe := pageio.Chain(pageio.NewStore(cfg.Store, nil),
		pageio.Trace("dbspace:"+cfg.Name),
		pageio.Meter(cfg.Stats, "dbspace:"+cfg.Name),
		pageio.Retry(pageio.Policy{
			ReadAttempts:  cfg.ReadRetries,
			WriteAttempts: 1,
			Delay:         cfg.RetryDelay,
			Cap:           retryCapFactor * cfg.RetryDelay,
			Scale:         cfg.Scale,
			Pool:          cfg.Pool,
		}),
		pageio.Trace("store:"+cfg.Name),
		pageio.Meter(cfg.Stats, "store:"+cfg.Name),
	)
	return &CloudDbspace{cfg: cfg, pipe: pipe, selPipe: selPipe}
}

// Name implements Dbspace.
func (d *CloudDbspace) Name() string { return d.cfg.Name }

// IsCloud implements Dbspace.
func (d *CloudDbspace) IsCloud() bool { return true }

// ObjectKey renders the object-store key a cloud page location maps to —
// the same naming the dbspace uses for its own I/O. Offline audits use it
// to compare reachable pages against the store's contents.
func (d *CloudDbspace) ObjectKey(key uint64) string { return d.cfg.Namer.Name(key) }

// WritePage implements Dbspace: it obtains a fresh key from the Object Key
// Generator instead of consulting a freelist, then uploads under that key.
// A failed upload is retried under the same key — the key was never visible,
// so reusing it preserves the never-write-twice invariant. With an OCM
// configured, WriteBack routes through the cache's write-back path and
// WriteThrough through its write-through path.
func (d *CloudDbspace) WritePage(ctx context.Context, data []byte, mode WriteMode) (Entry, error) {
	key, err := d.cfg.Keys.NextKey(ctx)
	if err != nil {
		return Entry{}, fmt.Errorf("dbspace %s: %w", d.cfg.Name, err)
	}
	req := pageio.WriteReq{
		Ref:   pageio.Ref{Key: d.cfg.Namer.Name(key)},
		Data:  data,
		Async: mode == WriteBack,
	}
	if err := d.pipe.WritePage(ctx, req); err != nil {
		return Entry{}, fmt.Errorf("dbspace %s: write key %#x: %w", d.cfg.Name, key, err)
	}
	return Entry{Loc: key, Size: uint32(len(data))}, nil
}

// WriteBatch implements Dbspace: one key per page, one pipeline batch.
// Failed items leave zero entries; their keys are never reused, which is
// safe because the RB bitmap reclaims whole allocated key ranges on
// rollback.
func (d *CloudDbspace) WriteBatch(ctx context.Context, pages [][]byte, mode WriteMode) ([]Entry, error) {
	entries := make([]Entry, len(pages))
	reqs := make([]pageio.WriteReq, len(pages))
	for i, data := range pages {
		key, err := d.cfg.Keys.NextKey(ctx)
		if err != nil {
			return entries, fmt.Errorf("dbspace %s: %w", d.cfg.Name, err)
		}
		entries[i] = Entry{Loc: key, Size: uint32(len(data))}
		reqs[i] = pageio.WriteReq{
			Ref:   pageio.Ref{Key: d.cfg.Namer.Name(key)},
			Data:  data,
			Async: mode == WriteBack,
		}
	}
	err := d.pipe.WriteBatch(ctx, reqs)
	if err != nil {
		for i, itemErr := range pageio.ItemErrors(err, len(pages)) {
			if itemErr != nil {
				entries[i] = Entry{}
			}
		}
	}
	return entries, err
}

// FlushForCommit implements Dbspace: with an OCM configured it promotes and
// awaits the uploads of every key in the given extents; otherwise writes
// were already synchronous and nothing remains to do. Extents may include
// keys that were never flushed (the RB bitmap records whole allocated
// ranges); those are skipped by the cache.
func (d *CloudDbspace) FlushForCommit(ctx context.Context, extents []rfrb.Range) error {
	if d.cfg.Cache == nil {
		return nil
	}
	var keys []string
	for _, r := range extents {
		for k := r.Start; k < r.End; k++ {
			keys = append(keys, d.cfg.Namer.Name(k))
		}
	}
	if len(keys) == 0 {
		return nil
	}
	if err := d.cfg.Cache.FlushForCommit(ctx, keys); err != nil {
		return fmt.Errorf("dbspace %s: %w", d.cfg.Name, err)
	}
	return nil
}

// ReadPage implements Dbspace. An object-not-found error is assumed to be an
// eventual-consistency artifact — the never-write-twice policy guarantees a
// stored page has exactly one version — so the pipeline's retry stage polls
// it up to the configured budget before failing.
func (d *CloudDbspace) ReadPage(ctx context.Context, e Entry) ([]byte, error) {
	if !e.IsCloud() {
		return nil, fmt.Errorf("dbspace %s: entry %v is not a cloud entry", d.cfg.Name, e)
	}
	data, err := d.pipe.ReadPage(ctx, pageio.Ref{Key: d.cfg.Namer.Name(e.Loc)})
	if err != nil {
		return nil, fmt.Errorf("dbspace %s: read key %#x: %w", d.cfg.Name, e.Loc, err)
	}
	return data, d.checkSize(e, data)
}

func (d *CloudDbspace) checkSize(e Entry, data []byte) error {
	if len(data) != int(e.Size) {
		return fmt.Errorf("dbspace %s: key %#x: stored %d bytes, entry says %d",
			d.cfg.Name, e.Loc, len(data), e.Size)
	}
	return nil
}

// ReadBatch implements Dbspace: one pipeline batch, retried per item.
func (d *CloudDbspace) ReadBatch(ctx context.Context, entries []Entry) ([][]byte, error) {
	out := make([][]byte, len(entries))
	errs := make([]error, len(entries))
	var refs []pageio.Ref
	var submit []int
	for i, e := range entries {
		if !e.IsCloud() {
			errs[i] = fmt.Errorf("dbspace %s: entry %v is not a cloud entry", d.cfg.Name, e)
			continue
		}
		refs = append(refs, pageio.Ref{Key: d.cfg.Namer.Name(e.Loc)})
		submit = append(submit, i)
	}
	res, err := d.pipe.ReadBatch(ctx, refs)
	itemErrs := pageio.ItemErrors(err, len(refs))
	for j, i := range submit {
		if itemErrs[j] != nil {
			errs[i] = fmt.Errorf("dbspace %s: read key %#x: %w", d.cfg.Name, entries[i].Loc, itemErrs[j])
			continue
		}
		if sizeErr := d.checkSize(entries[i], res[j]); sizeErr != nil {
			errs[i] = sizeErr
			continue
		}
		out[i] = res[j]
	}
	return out, batchError(errs)
}

// SelectCol names one column page of a segment for pushdown: the column
// name the plan refers to it by, and the blockmap entry of its stored page.
type SelectCol struct {
	Name string
	E    Entry
}

// Select pushes filter + projection + partial aggregation to the object
// store's compute endpoint, reading the named column pages store-side and
// returning only the qualifying bytes. It bypasses the OCM entirely (the
// page cache stores whole pages, not select results) but keeps the page
// path's retry-until-found discipline: a not-yet-visible column object is an
// eventual-consistency artifact, exactly as on ReadPage. Stores without a
// compute endpoint answer pageio.ErrSelectUnsupported.
func (d *CloudDbspace) Select(ctx context.Context, cols []SelectCol, flate bool, plan objstore.SelectPlan) (*objstore.SelectResult, error) {
	req := objstore.SelectRequest{
		Cols:  make([]objstore.SelectCol, len(cols)),
		Flate: flate,
		Plan:  plan,
	}
	for i, c := range cols {
		if !c.E.IsCloud() {
			return nil, fmt.Errorf("dbspace %s: select: entry %v is not a cloud entry", d.cfg.Name, c.E)
		}
		req.Cols[i] = objstore.SelectCol{Name: c.Name, Key: d.cfg.Namer.Name(c.E.Loc)}
	}
	res, err := pageio.Select(d.selPipe, ctx, req)
	if err != nil {
		return nil, fmt.Errorf("dbspace %s: select: %w", d.cfg.Name, err)
	}
	return res, nil
}

// batchError folds positional errors into a *pageio.BatchError (nil when
// every item succeeded).
func batchError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return &pageio.BatchError{Errs: errs}
		}
	}
	return nil
}

// DiscardKeyCache drops the dbspace's cached allocation range; see
// (*keygen.Client).Discard.
func (d *CloudDbspace) DiscardKeyCache() { d.cfg.Keys.Discard() }

// Reclaim implements Dbspace: every key in the range is deleted. Deletion is
// idempotent, so polling keys that were never flushed (or already collected
// by a rollback) is safe — Table 1's clock-150 walk does exactly this.
func (d *CloudDbspace) Reclaim(ctx context.Context, r rfrb.Range) error {
	for key := r.Start; key < r.End; key++ {
		if !rfrb.IsCloudKey(key) {
			return fmt.Errorf("dbspace %s: reclaim %#x: not a cloud key", d.cfg.Name, key)
		}
		if err := d.pipe.Delete(ctx, pageio.Ref{Key: d.cfg.Namer.Name(key)}); err != nil {
			return fmt.Errorf("dbspace %s: reclaim %#x: %w", d.cfg.Name, key, err)
		}
	}
	return nil
}

// BlockConfig parameterizes a conventional dbspace.
type BlockConfig struct {
	Name      string
	Device    blockdev.Device
	BlockSize int
	// MaxBlocks caps the blocks a single page may occupy (the paper's pages
	// span 1–16 blocks). Zero selects 16.
	MaxBlocks int
	// Blocks is the number of blocks the dbspace manages. Zero derives it
	// from the device size.
	Blocks uint64

	// Stats, when non-nil, receives per-layer I/O metrics under
	// "dbspace:<name>" (batch-level) and "dev:<name>" (after extent
	// coalescing).
	Stats *pageio.StatsRegistry
	// Pool bounds batch fan-out at the device terminal, overlapping per-op
	// device latency. Nil runs batch items sequentially.
	Pool *pageio.WorkPool
}

// BlockDbspace stores pages as contiguous block runs tracked by a freelist.
// Its pipeline is
//
//	Meter("dbspace:<name>") -> Coalesce -> Meter("dev:<name>") -> device
//
// so adjacent pages in a batch reach the device as one scatter-gather
// request.
type BlockDbspace struct {
	cfg  BlockConfig
	free *freelist.List
	pipe pageio.Handler
}

var _ Dbspace = (*BlockDbspace)(nil)

// NewBlock returns a conventional dbspace over cfg.Device.
func NewBlock(cfg BlockConfig) (*BlockDbspace, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("dbspace %s: block size %d", cfg.Name, cfg.BlockSize)
	}
	if cfg.MaxBlocks <= 0 {
		cfg.MaxBlocks = 16
	}
	if cfg.Blocks == 0 {
		cfg.Blocks = uint64(cfg.Device.Size()) / uint64(cfg.BlockSize)
	}
	if cfg.Blocks == 0 {
		return nil, fmt.Errorf("dbspace %s: zero capacity", cfg.Name)
	}
	if rfrb.IsCloudKey(cfg.Blocks) {
		return nil, fmt.Errorf("dbspace %s: %d blocks collides with the reserved cloud-key range", cfg.Name, cfg.Blocks)
	}
	// Trace outermost times the batch as the caller sees it; Coalesce
	// annotates the same span with its merge decision, and the inner Trace
	// stage records each post-merge device request individually.
	pipe := pageio.Chain(pageio.NewDevice(cfg.Device, cfg.Pool),
		pageio.Trace("dbspace:"+cfg.Name),
		pageio.Meter(cfg.Stats, "dbspace:"+cfg.Name),
		pageio.Coalesce(0),
		pageio.Trace("dev:"+cfg.Name),
		pageio.Meter(cfg.Stats, "dev:"+cfg.Name),
	)
	return &BlockDbspace{cfg: cfg, free: freelist.New(cfg.Blocks), pipe: pipe}, nil
}

// Name implements Dbspace.
func (d *BlockDbspace) Name() string { return d.cfg.Name }

// IsCloud implements Dbspace.
func (d *BlockDbspace) IsCloud() bool { return false }

// Freelist exposes the allocator (checkpointing needs its image).
func (d *BlockDbspace) Freelist() *freelist.List { return d.free }

// RestoreFreelist replaces the allocator with a checkpointed image during
// crash recovery.
func (d *BlockDbspace) RestoreFreelist(l *freelist.List) { d.free = l }

// allocate reserves a run for a page of len(data) bytes.
func (d *BlockDbspace) allocate(data []byte) (start uint64, n int, err error) {
	n = (len(data) + d.cfg.BlockSize - 1) / d.cfg.BlockSize
	if n == 0 {
		n = 1
	}
	if n > d.cfg.MaxBlocks {
		return 0, 0, fmt.Errorf("dbspace %s: page of %d bytes needs %d blocks, max %d",
			d.cfg.Name, len(data), n, d.cfg.MaxBlocks)
	}
	start, err = d.free.Allocate(uint64(n))
	if err != nil {
		return 0, 0, fmt.Errorf("dbspace %s: %w", d.cfg.Name, err)
	}
	return start, n, nil
}

// WritePage implements Dbspace, allocating a fresh block run.
func (d *BlockDbspace) WritePage(ctx context.Context, data []byte, _ WriteMode) (Entry, error) {
	start, n, err := d.allocate(data)
	if err != nil {
		return Entry{}, err
	}
	req := pageio.WriteReq{
		Ref:  pageio.Ref{Off: int64(start) * int64(d.cfg.BlockSize)},
		Data: data,
	}
	if err := d.pipe.WritePage(ctx, req); err != nil {
		_ = d.free.Free(start, uint64(n))
		return Entry{}, fmt.Errorf("dbspace %s: write blocks %d+%d: %w", d.cfg.Name, start, n, err)
	}
	return Entry{Loc: start, Size: uint32(len(data)), Blocks: uint16(n)}, nil
}

// WriteBatch implements Dbspace: runs are allocated up front, then the whole
// batch goes through the pipeline so the coalescer can group-commit adjacent
// runs. Failed items release their runs and leave zero entries.
func (d *BlockDbspace) WriteBatch(ctx context.Context, pages [][]byte, _ WriteMode) ([]Entry, error) {
	entries := make([]Entry, len(pages))
	reqs := make([]pageio.WriteReq, len(pages))
	errs := make([]error, len(pages))
	var submit []int
	for i, data := range pages {
		start, n, err := d.allocate(data)
		if err != nil {
			errs[i] = err
			continue
		}
		entries[i] = Entry{Loc: start, Size: uint32(len(data)), Blocks: uint16(n)}
		reqs[i] = pageio.WriteReq{
			Ref:  pageio.Ref{Off: int64(start) * int64(d.cfg.BlockSize)},
			Data: data,
		}
		submit = append(submit, i)
	}
	if len(submit) > 0 {
		sub := make([]pageio.WriteReq, len(submit))
		for j, i := range submit {
			sub[j] = reqs[i]
		}
		itemErrs := pageio.ItemErrors(d.pipe.WriteBatch(ctx, sub), len(submit))
		for j, i := range submit {
			if itemErrs[j] != nil {
				e := entries[i]
				_ = d.free.Free(e.Loc, uint64(e.Blocks))
				entries[i] = Entry{}
				errs[i] = fmt.Errorf("dbspace %s: write blocks %d+%d: %w", d.cfg.Name, e.Loc, e.Blocks, itemErrs[j])
			}
		}
	}
	return entries, batchError(errs)
}

// Rewrite updates a page in place when the new image fits in the existing
// block run — the in-place optimization available to conventional dbspaces
// for pages modified within the same transaction/savepoint (§3.1). It
// returns the updated entry, or falls back to a fresh write (in which case
// the caller must treat the old entry as superseded).
func (d *BlockDbspace) Rewrite(ctx context.Context, e Entry, data []byte) (Entry, bool, error) {
	if e.IsCloud() || len(data) > int(e.Blocks)*d.cfg.BlockSize {
		fresh, err := d.WritePage(ctx, data, WriteThrough)
		return fresh, false, err
	}
	req := pageio.WriteReq{
		Ref:  pageio.Ref{Off: int64(e.Loc) * int64(d.cfg.BlockSize)},
		Data: data,
	}
	if err := d.pipe.WritePage(ctx, req); err != nil {
		return Entry{}, false, fmt.Errorf("dbspace %s: rewrite blocks %d: %w", d.cfg.Name, e.Loc, err)
	}
	e.Size = uint32(len(data))
	return e, true, nil
}

// ReadPage implements Dbspace.
func (d *BlockDbspace) ReadPage(ctx context.Context, e Entry) ([]byte, error) {
	if e.IsCloud() {
		return nil, fmt.Errorf("dbspace %s: entry %v is a cloud entry", d.cfg.Name, e)
	}
	ref := pageio.Ref{Off: int64(e.Loc) * int64(d.cfg.BlockSize), Len: int(e.Size)}
	data, err := d.pipe.ReadPage(ctx, ref)
	if err != nil {
		return nil, fmt.Errorf("dbspace %s: read blocks %d+%d: %w", d.cfg.Name, e.Loc, e.Blocks, err)
	}
	return data, nil
}

// ReadBatch implements Dbspace: adjacent entries in the batch coalesce into
// scatter-gather device reads.
func (d *BlockDbspace) ReadBatch(ctx context.Context, entries []Entry) ([][]byte, error) {
	out := make([][]byte, len(entries))
	errs := make([]error, len(entries))
	var refs []pageio.Ref
	var submit []int
	for i, e := range entries {
		if e.IsCloud() {
			errs[i] = fmt.Errorf("dbspace %s: entry %v is a cloud entry", d.cfg.Name, e)
			continue
		}
		refs = append(refs, pageio.Ref{Off: int64(e.Loc) * int64(d.cfg.BlockSize), Len: int(e.Size)})
		submit = append(submit, i)
	}
	res, err := d.pipe.ReadBatch(ctx, refs)
	itemErrs := pageio.ItemErrors(err, len(refs))
	for j, i := range submit {
		if itemErrs[j] != nil {
			errs[i] = fmt.Errorf("dbspace %s: read blocks %d+%d: %w", d.cfg.Name, entries[i].Loc, entries[i].Blocks, itemErrs[j])
			continue
		}
		out[i] = res[j]
	}
	return out, batchError(errs)
}

// FlushForCommit implements Dbspace: conventional writes are already
// durable, so there is nothing to flush.
func (d *BlockDbspace) FlushForCommit(ctx context.Context, _ []rfrb.Range) error {
	return ctx.Err()
}

// Reclaim implements Dbspace, releasing the block run to the freelist.
// Release tolerates already-free blocks, matching the idempotent polling
// semantics of the cloud path.
func (d *BlockDbspace) Reclaim(ctx context.Context, r rfrb.Range) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := d.free.Release(r.Start, r.Len()); err != nil {
		return fmt.Errorf("dbspace %s: %w", d.cfg.Name, err)
	}
	return nil
}
