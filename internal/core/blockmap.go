package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"cloudiq/internal/pageio"
)

// Blockmap maps logical page numbers to physical entries. Blockmap pages are
// organized as a radix tree and are themselves stored as pages in the owning
// dbspace; modifying a data page's entry dirties its leaf, and flushing a
// dirty node relocates it (never-write-twice on cloud dbspaces), which in
// turn dirties its parent — the versioning cascade of Figure 2 (H' → D' →
// A'). The location of the root after a flush is recorded in an identity
// object kept on strongly consistent storage.
type Blockmap struct {
	ds     Dbspace
	fanout int

	mu    sync.Mutex
	root  *bmNode
	pages uint64 // high-water logical page count
}

type bmNode struct {
	level    int // 0 = leaf
	dirty    bool
	stored   Entry // current physical location; zero if never flushed
	entries  []Entry
	children []*bmNode // inner nodes: lazily loaded child cache
}

func newNode(level, fanout int) *bmNode {
	n := &bmNode{level: level, entries: make([]Entry, fanout)}
	if level > 0 {
		n.children = make([]*bmNode, fanout)
	}
	return n
}

// MinFanout is the smallest supported tree fanout.
const MinFanout = 2

// NewBlockmap returns an empty blockmap whose pages will live in ds.
func NewBlockmap(ds Dbspace, fanout int) (*Blockmap, error) {
	if fanout < MinFanout {
		return nil, fmt.Errorf("core: blockmap fanout %d below minimum %d", fanout, MinFanout)
	}
	return &Blockmap{ds: ds, fanout: fanout, root: newNode(0, fanout)}, nil
}

// Identity records everything needed to reopen a blockmap: the root's
// location, the logical page high-water mark, and the fanout. Identity
// objects live in the system catalog on strongly consistent storage and are
// updated in place (§3.1).
type Identity struct {
	Root   Entry
	Pages  uint64
	Fanout uint32
	Levels uint32
}

// MarshalIdentity serializes an Identity.
func MarshalIdentity(id Identity) []byte {
	buf := make([]byte, EntrySize+16)
	id.Root.encode(buf)
	binary.LittleEndian.PutUint64(buf[EntrySize:], id.Pages)
	binary.LittleEndian.PutUint32(buf[EntrySize+8:], id.Fanout)
	binary.LittleEndian.PutUint32(buf[EntrySize+12:], id.Levels)
	return buf
}

// UnmarshalIdentity decodes MarshalIdentity output.
func UnmarshalIdentity(buf []byte) (Identity, error) {
	if len(buf) < EntrySize+16 {
		return Identity{}, fmt.Errorf("core: identity buffer too short (%d bytes)", len(buf))
	}
	return Identity{
		Root:   decodeEntry(buf),
		Pages:  binary.LittleEndian.Uint64(buf[EntrySize:]),
		Fanout: binary.LittleEndian.Uint32(buf[EntrySize+8:]),
		Levels: binary.LittleEndian.Uint32(buf[EntrySize+12:]),
	}, nil
}

// OpenBlockmap reopens a blockmap from its identity. Child pages load
// lazily on first access.
func OpenBlockmap(ds Dbspace, id Identity) (*Blockmap, error) {
	if id.Fanout < MinFanout {
		return nil, fmt.Errorf("core: identity fanout %d below minimum", id.Fanout)
	}
	bm := &Blockmap{ds: ds, fanout: int(id.Fanout), pages: id.Pages}
	root := newNode(int(id.Levels), int(id.Fanout))
	root.stored = id.Root
	if !id.Root.IsZero() {
		root.entries = nil // force load on first access
	}
	bm.root = root
	return bm, nil
}

// Identity returns the identity as of the last Flush. Calling it with
// unflushed changes returns the previous root.
func (b *Blockmap) Identity() Identity {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Identity{Root: b.root.stored, Pages: b.pages, Fanout: uint32(b.fanout), Levels: uint32(b.root.level)}
}

// Pages returns the logical page high-water mark.
func (b *Blockmap) Pages() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pages
}

// Dirty reports whether the tree has unflushed changes.
func (b *Blockmap) Dirty() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.root.dirty
}

// capacity of a subtree rooted at the given level, saturating at the top of
// the uint64 space so that growth terminates for any logical page number.
func (b *Blockmap) capacity(level int) uint64 {
	c := uint64(b.fanout)
	for i := 0; i < level; i++ {
		next := c * uint64(b.fanout)
		if next/uint64(b.fanout) != c {
			return ^uint64(0)
		}
		c = next
	}
	return c
}

// ensureLoaded populates a node's entries from storage if needed.
func (b *Blockmap) ensureLoaded(ctx context.Context, n *bmNode) error {
	if n.entries != nil {
		return nil
	}
	data, err := b.ds.ReadPage(ctx, n.stored)
	if err != nil {
		return fmt.Errorf("core: load blockmap page %v: %w", n.stored, err)
	}
	level, entries, err := decodeNode(data, b.fanout)
	if err != nil {
		return err
	}
	if level != n.level {
		return fmt.Errorf("core: blockmap page %v has level %d, expected %d", n.stored, level, n.level)
	}
	n.entries = entries
	if n.level > 0 && n.children == nil {
		n.children = make([]*bmNode, b.fanout)
	}
	return nil
}

func encodeNode(level int, entries []Entry) []byte {
	buf := make([]byte, 8+EntrySize*len(entries))
	buf[0] = byte(level)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(entries)))
	for i, e := range entries {
		e.encode(buf[8+EntrySize*i:])
	}
	return buf
}

func decodeNode(data []byte, fanout int) (int, []Entry, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("core: blockmap page too short (%d bytes)", len(data))
	}
	level := int(data[0])
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if n != fanout || len(data) < 8+EntrySize*n {
		return 0, nil, fmt.Errorf("core: blockmap page has %d entries in %d bytes, fanout %d", n, len(data), fanout)
	}
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = decodeEntry(data[8+EntrySize*i:])
	}
	return level, entries, nil
}

// Set maps logical to e, growing the tree as needed, and returns the entry
// it replaced (zero if none). The replaced entry's extent belongs to the
// superseded page version; the caller records it with its transaction's RF
// bitmap when appropriate.
func (b *Blockmap) Set(ctx context.Context, logical uint64, e Entry) (Entry, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for logical >= b.capacity(b.root.level) {
		// Grow by adding a level above the current root.
		oldRoot := b.root
		nr := newNode(oldRoot.level+1, b.fanout)
		nr.children[0] = oldRoot
		nr.entries[0] = oldRoot.stored
		nr.dirty = true
		b.root = nr
	}
	old, err := b.set(ctx, b.root, logical, e)
	if err != nil {
		return Entry{}, err
	}
	if logical+1 > b.pages {
		b.pages = logical + 1
	}
	return old, nil
}

func (b *Blockmap) set(ctx context.Context, n *bmNode, logical uint64, e Entry) (Entry, error) {
	if err := b.ensureLoaded(ctx, n); err != nil {
		return Entry{}, err
	}
	if n.level == 0 {
		old := n.entries[logical]
		n.entries[logical] = e
		n.dirty = true
		return old, nil
	}
	stride := b.capacity(n.level - 1)
	idx := logical / stride
	child := n.children[idx]
	if child == nil {
		child = newNode(n.level-1, b.fanout)
		if !n.entries[idx].IsZero() {
			child.stored = n.entries[idx]
			child.entries = nil // load lazily
			if child.level > 0 {
				child.children = make([]*bmNode, b.fanout)
			}
		}
		n.children[idx] = child
	}
	old, err := b.set(ctx, child, logical%stride, e)
	if err != nil {
		return Entry{}, err
	}
	n.dirty = true
	return old, nil
}

// Get returns the entry for logical, or the zero Entry if unmapped.
func (b *Blockmap) Get(ctx context.Context, logical uint64) (Entry, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if logical >= b.capacity(b.root.level) {
		return Entry{}, nil
	}
	return b.get(ctx, b.root, logical)
}

func (b *Blockmap) get(ctx context.Context, n *bmNode, logical uint64) (Entry, error) {
	if err := b.ensureLoaded(ctx, n); err != nil {
		return Entry{}, err
	}
	if n.level == 0 {
		return n.entries[logical], nil
	}
	stride := b.capacity(n.level - 1)
	idx := logical / stride
	child := n.children[idx]
	if child == nil {
		if n.entries[idx].IsZero() {
			return Entry{}, nil
		}
		child = newNode(n.level-1, b.fanout)
		child.stored = n.entries[idx]
		child.entries = nil
		if child.level > 0 {
			child.children = make([]*bmNode, b.fanout)
		}
		n.children[idx] = child
	}
	return b.get(ctx, child, logical%stride)
}

// Delete unmaps logical and returns the replaced entry.
func (b *Blockmap) Delete(ctx context.Context, logical uint64) (Entry, error) {
	return b.Set(ctx, logical, Entry{})
}

// dirtyNode is one node awaiting flush, with the parent slot its fresh
// location must be installed into (nil parent for the root).
type dirtyNode struct {
	node   *bmNode
	parent *bmNode
	idx    int
}

// Flush writes every dirty node bottom-up, allocating a fresh location for
// each (the copy-on-write cascade), reporting superseded and fresh extents
// to sink, and returns the new identity. Blockmap page allocations and frees
// are reported through the same sink as data pages, so the transaction's
// RF/RB bitmaps capture the whole cascade.
//
// All dirty nodes of one level are submitted as a single WriteBatch: the
// dbspace pipeline masks per-object write latency on cloud dbspaces and
// coalesces adjacent runs on conventional ones, while sink notifications
// and tree mutations happen serially in tree order — the flush is
// deterministic, no LockedSink needed.
func (b *Blockmap) Flush(ctx context.Context, sink FlushSink) (Identity, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.root.dirty {
		return b.identityLocked(), nil
	}

	// Every ancestor of a dirty node is dirty (Set marks the whole path),
	// so a DFS over dirty nodes finds the complete cascade.
	levels := make([][]dirtyNode, b.root.level+1)
	var collect func(n, parent *bmNode, idx int)
	collect = func(n, parent *bmNode, idx int) {
		levels[n.level] = append(levels[n.level], dirtyNode{node: n, parent: parent, idx: idx})
		if n.level == 0 {
			return
		}
		for i, child := range n.children {
			if child != nil && child.dirty {
				collect(child, n, i)
			}
		}
	}
	collect(b.root, nil, 0)

	for level := 0; level <= b.root.level; level++ {
		batch := levels[level]
		if len(batch) == 0 {
			continue
		}
		pages := make([][]byte, len(batch))
		for i, dn := range batch {
			// Children of this node already flushed in the previous level
			// pass and installed their fresh entries.
			pages[i] = encodeNode(dn.node.level, dn.node.entries)
		}
		entries, err := b.ds.WriteBatch(ctx, pages, WriteThrough)
		// Successful items are installed even when siblings failed: their
		// allocations must reach the sink so a rollback can reclaim them.
		for i, itemErr := range pageio.ItemErrors(err, len(batch)) {
			if itemErr != nil {
				continue
			}
			n := batch[i].node
			if !n.stored.IsZero() {
				sink.NoteFreed(n.stored)
			}
			sink.NoteAllocated(entries[i])
			n.stored = entries[i]
			n.dirty = false
			if p := batch[i].parent; p != nil {
				p.entries[batch[i].idx] = entries[i]
			}
		}
		if err != nil {
			return Identity{}, fmt.Errorf("core: flush blockmap level %d: %w", level, err)
		}
	}
	return b.identityLocked(), nil
}

func (b *Blockmap) identityLocked() Identity {
	return Identity{Root: b.root.stored, Pages: b.pages, Fanout: uint32(b.fanout), Levels: uint32(b.root.level)}
}

// ForEachPhysical visits the physical entry of every mapped data page AND
// of every stored blockmap page (the tree itself). Dropping an object
// retires exactly this set of extents.
func (b *Blockmap) ForEachPhysical(ctx context.Context, fn func(e Entry) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.forEachPhysical(ctx, b.root, fn)
}

func (b *Blockmap) forEachPhysical(ctx context.Context, n *bmNode, fn func(Entry) error) error {
	if !n.stored.IsZero() {
		if err := fn(n.stored); err != nil {
			return err
		}
	}
	if err := b.ensureLoaded(ctx, n); err != nil {
		return err
	}
	if n.level == 0 {
		for _, e := range n.entries {
			if e.IsZero() {
				continue
			}
			if err := fn(e); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range n.entries {
		child := n.children[i]
		if child == nil {
			if n.entries[i].IsZero() {
				continue
			}
			child = newNode(n.level-1, b.fanout)
			child.stored = n.entries[i]
			child.entries = nil
			if child.level > 0 {
				child.children = make([]*bmNode, b.fanout)
			}
			n.children[i] = child
		}
		if err := b.forEachPhysical(ctx, child, fn); err != nil {
			return err
		}
	}
	return nil
}

// ForEach visits every mapped logical page in ascending order. fn returning
// an error stops the walk.
func (b *Blockmap) ForEach(ctx context.Context, fn func(logical uint64, e Entry) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.forEach(ctx, b.root, 0, fn)
}

func (b *Blockmap) forEach(ctx context.Context, n *bmNode, base uint64, fn func(uint64, Entry) error) error {
	if err := b.ensureLoaded(ctx, n); err != nil {
		return err
	}
	if n.level == 0 {
		for i, e := range n.entries {
			if e.IsZero() {
				continue
			}
			if err := fn(base+uint64(i), e); err != nil {
				return err
			}
		}
		return nil
	}
	stride := b.capacity(n.level - 1)
	for i := range n.entries {
		child := n.children[i]
		if child == nil {
			if n.entries[i].IsZero() {
				continue
			}
			child = newNode(n.level-1, b.fanout)
			child.stored = n.entries[i]
			child.entries = nil
			if child.level > 0 {
				child.children = make([]*bmNode, b.fanout)
			}
			n.children[i] = child
		}
		if err := b.forEach(ctx, child, base+uint64(i)*stride, fn); err != nil {
			return err
		}
	}
	return nil
}
