package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cloudiq/internal/blockdev"
	"cloudiq/internal/faultinject"
	"cloudiq/internal/keygen"
	"cloudiq/internal/objstore"
	"cloudiq/internal/rfrb"
)

func ctxb() context.Context { return context.Background() }

func newCloudSpace(t *testing.T, store objstore.Store) *CloudDbspace {
	if t != nil {
		t.Helper()
	}
	gen := keygen.NewGenerator(nil)
	client := keygen.NewClient(func(ctx context.Context, n uint64) (rfrb.Range, error) {
		return gen.Allocate(ctx, "node", n)
	})
	return NewCloud(CloudConfig{Name: "cloud", Store: store, Keys: client})
}

func newBlockSpace(t *testing.T) *BlockDbspace {
	t.Helper()
	dev := blockdev.NewMem(blockdev.Config{Capacity: 1 << 20})
	ds, err := NewBlock(BlockConfig{Name: "main", Device: dev, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCloudWriteReadRoundTrip(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	ds := newCloudSpace(t, store)
	e, err := ds.WritePage(ctxb(), []byte("page contents"), WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsCloud() {
		t.Fatalf("entry %v not classified as cloud", e)
	}
	got, err := ds.ReadPage(ctxb(), e)
	if err != nil || string(got) != "page contents" {
		t.Fatalf("ReadPage = %q, %v", got, err)
	}
}

func TestCloudNeverWritesAKeyTwice(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	ds := newCloudSpace(t, store)
	seen := make(map[uint64]bool)
	for i := 0; i < 500; i++ {
		e, err := ds.WritePage(ctxb(), []byte{byte(i)}, WriteThrough)
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.Loc] {
			t.Fatalf("key %#x used twice", e.Loc)
		}
		seen[e.Loc] = true
	}
	if got := store.Len(); got != 500 {
		t.Fatalf("store has %d objects, want 500", got)
	}
}

func TestCloudReadRetriesEventualConsistency(t *testing.T) {
	// The store hides fresh objects from the first 3 reads; the dbspace
	// must retry until found.
	store := objstore.NewMem(objstore.Config{Consistency: objstore.Consistency{NewKeyMissReads: 3}})
	ds := newCloudSpace(t, store)
	e, err := ds.WritePage(ctxb(), []byte("eventually"), WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadPage(ctxb(), e)
	if err != nil || string(got) != "eventually" {
		t.Fatalf("ReadPage = %q, %v", got, err)
	}
	if misses := store.Metrics().GetMisses(); misses != 3 {
		t.Fatalf("misses = %d, want 3", misses)
	}
}

func TestCloudReadRetryBudgetExhausted(t *testing.T) {
	store := objstore.NewMem(objstore.Config{Consistency: objstore.Consistency{NewKeyMissReads: 50}})
	gen := keygen.NewGenerator(nil)
	client := keygen.NewClient(func(ctx context.Context, n uint64) (rfrb.Range, error) {
		return gen.Allocate(ctx, "node", n)
	})
	ds := NewCloud(CloudConfig{Name: "cloud", Store: store, Keys: client, ReadRetries: 4})
	e, err := ds.WritePage(ctxb(), []byte("x"), WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ReadPage(ctxb(), e); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

func TestCloudWriteRetriesThenFails(t *testing.T) {
	plan := faultinject.New(1)
	plan.FailNext(faultinject.ObjPut, 2)
	store := objstore.NewMem(objstore.Config{Faults: plan})
	ds := newCloudSpace(t, store)
	// First write: two failures then success (WriteRetries default 3).
	if _, err := ds.WritePage(ctxb(), []byte("x"), WriteThrough); err != nil {
		t.Fatalf("write with transient failures: %v", err)
	}
	// Now make every put fail: budget exhausts.
	plan.Always(faultinject.ObjPut)
	if _, err := ds.WritePage(ctxb(), []byte("y"), WriteThrough); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

func TestCloudReadSizeMismatchDetected(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	ds := newCloudSpace(t, store)
	e, err := ds.WritePage(ctxb(), []byte("abc"), WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	e.Size = 99
	if _, err := ds.ReadPage(ctxb(), e); err == nil || !strings.Contains(err.Error(), "entry says") {
		t.Fatalf("size mismatch not detected: %v", err)
	}
}

func TestCloudReadRejectsBlockEntry(t *testing.T) {
	ds := newCloudSpace(t, objstore.NewMem(objstore.Config{}))
	if _, err := ds.ReadPage(ctxb(), Entry{Loc: 5, Blocks: 1}); err == nil {
		t.Fatal("block entry accepted by cloud dbspace")
	}
}

func TestCloudReclaimDeletesAndPollsIdempotently(t *testing.T) {
	store := objstore.NewMem(objstore.Config{})
	ds := newCloudSpace(t, store)
	var entries []Entry
	for i := 0; i < 10; i++ {
		e, err := ds.WritePage(ctxb(), []byte{byte(i)}, WriteThrough)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	// Reclaim a range wider than what was flushed: unconsumed keys are
	// polled harmlessly (Table 1, clock 150).
	r := rfrb.Range{Start: entries[0].Loc, End: entries[9].Loc + 100}
	if err := ds.Reclaim(ctxb(), r); err != nil {
		t.Fatal(err)
	}
	if got := store.Len(); got != 0 {
		t.Fatalf("store has %d objects after reclaim, want 0", got)
	}
	// Reclaiming again is idempotent.
	if err := ds.Reclaim(ctxb(), r); err != nil {
		t.Fatal(err)
	}
	// Non-cloud ranges are rejected.
	if err := ds.Reclaim(ctxb(), rfrb.Range{Start: 1, End: 2}); err == nil {
		t.Fatal("block range accepted by cloud reclaim")
	}
}

func TestKeyNamerHashedSpreadsPrefixes(t *testing.T) {
	n := KeyNamer{}
	prefixes := make(map[string]bool)
	for i := uint64(0); i < 1000; i++ {
		name := n.Name(rfrb.CloudKeyBase + i)
		parts := strings.SplitN(name, "/", 2)
		if len(parts) != 2 {
			t.Fatalf("name %q has no prefix", name)
		}
		prefixes[parts[0]] = true
	}
	if len(prefixes) < 250 {
		t.Fatalf("only %d distinct prefixes for 1000 consecutive keys", len(prefixes))
	}
	seq := KeyNamer{Sequential: true}
	if got := seq.Name(42); got != "seq/000000000000002a" {
		t.Fatalf("sequential name = %q", got)
	}
}

func TestBlockWriteReadRoundTrip(t *testing.T) {
	ds := newBlockSpace(t)
	e, err := ds.WritePage(ctxb(), []byte("conventional page"), WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if e.IsCloud() || e.Blocks != 1 {
		t.Fatalf("entry = %v", e)
	}
	got, err := ds.ReadPage(ctxb(), e)
	if err != nil || string(got) != "conventional page" {
		t.Fatalf("ReadPage = %q, %v", got, err)
	}
}

func TestBlockMultiBlockPages(t *testing.T) {
	ds := newBlockSpace(t)
	data := make([]byte, 512*3+10) // needs 4 blocks
	for i := range data {
		data[i] = byte(i)
	}
	e, err := ds.WritePage(ctxb(), data, WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if e.Blocks != 4 {
		t.Fatalf("Blocks = %d, want 4", e.Blocks)
	}
	got, err := ds.ReadPage(ctxb(), e)
	if err != nil || len(got) != len(data) || got[len(got)-1] != data[len(data)-1] {
		t.Fatalf("round trip failed: %d bytes, %v", len(got), err)
	}
}

func TestBlockPageTooLarge(t *testing.T) {
	ds := newBlockSpace(t)
	if _, err := ds.WritePage(ctxb(), make([]byte, 512*17), WriteThrough); err == nil {
		t.Fatal("17-block page accepted (max is 16)")
	}
}

func TestBlockRewriteInPlace(t *testing.T) {
	ds := newBlockSpace(t)
	e, err := ds.WritePage(ctxb(), make([]byte, 1000), WriteThrough) // 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	inUse := ds.Freelist().InUse()
	e2, inPlace, err := ds.Rewrite(ctxb(), e, []byte("small"))
	if err != nil || !inPlace {
		t.Fatalf("Rewrite = %v, %v, %v", e2, inPlace, err)
	}
	if e2.Loc != e.Loc || e2.Size != 5 {
		t.Fatalf("in-place entry = %v", e2)
	}
	if got := ds.Freelist().InUse(); got != inUse {
		t.Fatalf("in-place rewrite changed allocation: %d != %d", got, inUse)
	}
	got, err := ds.ReadPage(ctxb(), e2)
	if err != nil || string(got) != "small" {
		t.Fatalf("read after rewrite = %q, %v", got, err)
	}
	// A larger image no longer fits: fresh allocation.
	e3, inPlace, err := ds.Rewrite(ctxb(), e2, make([]byte, 512*3))
	if err != nil || inPlace {
		t.Fatalf("grow rewrite = %v, %v, %v", e3, inPlace, err)
	}
	if e3.Loc == e2.Loc {
		t.Fatal("grow rewrite reused the old location")
	}
}

func TestBlockReclaimReleasesBlocks(t *testing.T) {
	ds := newBlockSpace(t)
	e, _ := ds.WritePage(ctxb(), make([]byte, 1024), WriteThrough)
	if err := ds.Reclaim(ctxb(), e.Span()); err != nil {
		t.Fatal(err)
	}
	if got := ds.Freelist().InUse(); got != 0 {
		t.Fatalf("InUse after reclaim = %d, want 0", got)
	}
	// Idempotent.
	if err := ds.Reclaim(ctxb(), e.Span()); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSpaceExhaustion(t *testing.T) {
	dev := blockdev.NewMem(blockdev.Config{Capacity: 4 * 512})
	ds, err := NewBlock(BlockConfig{Name: "tiny", Device: dev, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.WritePage(ctxb(), make([]byte, 512*4), WriteThrough); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.WritePage(ctxb(), []byte("x"), WriteThrough); err == nil {
		t.Fatal("write on full dbspace succeeded")
	}
}

func TestNewBlockValidation(t *testing.T) {
	dev := blockdev.NewMem(blockdev.Config{Capacity: 1024})
	if _, err := NewBlock(BlockConfig{Name: "bad", Device: dev, BlockSize: 0}); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := NewBlock(BlockConfig{Name: "bad", Device: dev, BlockSize: 2048}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestEntryStringAndSpan(t *testing.T) {
	free := Entry{}
	if free.String() != "<free>" || !free.IsZero() {
		t.Fatalf("zero entry: %v", free)
	}
	blk := Entry{Loc: 7, Blocks: 3, Size: 100}
	if blk.Span() != (rfrb.Range{Start: 7, End: 10}) {
		t.Fatalf("block span = %v", blk.Span())
	}
	obj := Entry{Loc: rfrb.CloudKeyBase + 5, Size: 10}
	if obj.Span().Len() != 1 {
		t.Fatalf("cloud span = %v", obj.Span())
	}
	if !strings.Contains(obj.String(), "obj") || !strings.Contains(blk.String(), "blk") {
		t.Fatalf("Strings: %v, %v", obj, blk)
	}
}

func TestEntryMarshalRoundTrip(t *testing.T) {
	e := Entry{Loc: rfrb.CloudKeyBase + 99, Size: 12345, Blocks: 0, Flags: 7}
	got, err := UnmarshalEntry(MarshalEntry(e))
	if err != nil || got != e {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	if _, err := UnmarshalEntry([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestBitmapSink(t *testing.T) {
	var rb, rf rfrb.Bitmap
	sink := BitmapSink{RB: &rb, RF: &rf}
	sink.NoteAllocated(Entry{Loc: 10, Blocks: 4})
	sink.NoteFreed(Entry{Loc: rfrb.CloudKeyBase + 3, Size: 1})
	if rb.Count() != 4 || !rb.Contains(13) {
		t.Fatalf("RB = %v", &rb)
	}
	if rf.Count() != 1 || !rf.Contains(rfrb.CloudKeyBase+3) {
		t.Fatalf("RF = %v", &rf)
	}
	// Nil bitmaps and NopSink must not panic.
	BitmapSink{}.NoteAllocated(Entry{Loc: 1, Blocks: 1})
	NopSink{}.NoteFreed(Entry{Loc: 1, Blocks: 1})
}
